// The public-API session object: engine lifecycle, request forms, the
// strategy registry (custom registration, dispatch precedence and
// applicability gating), and registry-sized batch stats.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "wdag/wdag.hpp"

namespace {

using namespace wdag;

/// A family of two arc-sharing dipaths on a chain host (Theorem 1 regime).
struct ChainInstance {
  graph::Digraph g = test::chain(4);
  paths::DipathFamily family{g};
  ChainInstance() {
    family.add_through({0, 1, 2});
    family.add_through({1, 2, 3});
  }
};

/// Colors path i with color i: always a valid assignment, never optimal
/// on conflicting families of > pi paths.
class RainbowStrategy final : public SolverStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "rainbow"; }
  [[nodiscard]] bool applicable(const dag::DagReport& r) const override {
    return r.is_dag;
  }
  [[nodiscard]] StrategyResult solve(const paths::DipathFamily& family,
                                     const StrategyContext&) const override {
    StrategyResult out;
    out.coloring.resize(family.size());
    for (std::size_t i = 0; i < family.size(); ++i) {
      out.coloring[i] = static_cast<std::uint32_t>(i);
    }
    out.wavelengths = family.size();
    return out;
  }
};

/// Applicable only to the split-merge regime (UPP with internal cycles).
class UppOnlyStrategy final : public SolverStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "upp-only"; }
  [[nodiscard]] bool applicable(const dag::DagReport& r) const override {
    return r.is_dag && r.is_upp && r.internal_cycles > 0;
  }
  [[nodiscard]] StrategyResult solve(const paths::DipathFamily& family,
                                     const StrategyContext&) const override {
    StrategyResult out;
    out.coloring.resize(family.size());
    for (std::size_t i = 0; i < family.size(); ++i) {
      out.coloring[i] = static_cast<std::uint32_t>(i);
    }
    out.wavelengths = family.size();
    return out;
  }
};

/// Returns a VALID rainbow coloring but lies about the wavelength count,
/// claiming w == pi — which would falsely certify optimality.
class LyingStrategy final : public SolverStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "liar"; }
  [[nodiscard]] bool applicable(const dag::DagReport& r) const override {
    return r.is_dag;
  }
  [[nodiscard]] StrategyResult solve(const paths::DipathFamily& family,
                                     const StrategyContext&) const override {
    StrategyResult out;
    out.coloring.resize(family.size());
    for (std::size_t i = 0; i < family.size(); ++i) {
      out.coloring[i] = static_cast<std::uint32_t>(i);
    }
    out.wavelengths = paths::max_load(family);  // the lie
    return out;
  }
};

/// Returns an invalid all-zero coloring whenever two paths conflict.
class BrokenStrategy final : public SolverStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "broken"; }
  [[nodiscard]] bool applicable(const dag::DagReport& r) const override {
    return r.is_dag;
  }
  [[nodiscard]] StrategyResult solve(const paths::DipathFamily& family,
                                     const StrategyContext&) const override {
    StrategyResult out;
    out.coloring.assign(family.size(), 0);
    out.wavelengths = 1;
    return out;
  }
};

/// An engine whose exact certification is disabled, so sub-optimal custom
/// results are returned as-is instead of being upgraded to "exact".
Engine uncertified_engine(std::size_t threads = 1) {
  EngineOptions options;
  options.threads = threads;
  options.solve.exact_threshold = 0;
  return Engine(options);
}

// ---------------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------------

TEST(EngineLifecycleTest, OwnsAPoolOfTheRequestedSize) {
  EngineOptions options;
  options.threads = 2;
  Engine engine(options);
  EXPECT_EQ(engine.threads(), 2u);
  // Built-ins are pre-registered at their fixed ids.
  EXPECT_EQ(engine.strategies().size(), core::kBuiltinStrategyCount);
  EXPECT_EQ(engine.strategies().find("theorem1"), core::kStrategyTheorem1);
  EXPECT_EQ(engine.strategies().find("split-merge"),
            core::kStrategySplitMerge);
  EXPECT_EQ(engine.strategies().find("dsatur"), core::kStrategyDsatur);
  EXPECT_EQ(engine.strategies().find("exact"), core::kStrategyExact);
}

TEST(EngineLifecycleTest, SubmitsAndBatchesInterleaveOnOneEngine) {
  EngineOptions options;
  options.threads = 2;
  Engine engine(options);
  const ChainInstance inst;

  const SolveResponse first = engine.submit(SolveRequest::of(inst.family));
  const core::BatchReport batch =
      engine.run_batch(BatchRequest::generated("random-upp", 60));
  const SolveResponse second = engine.submit(SolveRequest::of(inst.family));

  EXPECT_EQ(batch.instance_count, 60u);
  EXPECT_EQ(batch.failure_count, 0u);
  EXPECT_EQ(first.wavelengths, second.wavelengths);
  EXPECT_EQ(first.strategy, second.strategy);
}

// ---------------------------------------------------------------------------
// Request forms.
// ---------------------------------------------------------------------------

TEST(EngineSubmitTest, InlineFamilyGetsTheorem1OnNoInternalCycleHosts) {
  Engine engine = uncertified_engine();
  const ChainInstance inst;
  const SolveResponse r = engine.submit(SolveRequest::of(inst.family));
  EXPECT_EQ(r.strategy, core::kStrategyTheorem1);
  EXPECT_EQ(r.strategy_name, "theorem1");
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(r.paths, 2u);
  EXPECT_EQ(r.wavelengths, r.load);
  EXPECT_TRUE(conflict::is_valid_assignment(inst.family, r.coloring));
}

TEST(EngineSubmitTest, AgreesWithDirectSolveAcrossEveryRegime) {
  Engine engine(EngineOptions{});
  util::Xoshiro256 rng(20260730);
  for (std::size_t i = 0; i < 40; ++i) {
    const gen::Instance inst = test::mixed_regime_instance(rng, i);
    const SolveResponse resp = engine.submit(SolveRequest::of(inst.family));
    const SolveResponse direct = test::solve_builtin(inst.family);
    EXPECT_EQ(resp.strategy, direct.strategy) << i;
    EXPECT_EQ(resp.wavelengths, direct.wavelengths) << i;
    EXPECT_EQ(resp.load, direct.load) << i;
    EXPECT_EQ(resp.optimal, direct.optimal) << i;
  }
}

TEST(EngineSubmitTest, GeneratedRequestMatchesTheWorkloadFactory) {
  Engine engine(EngineOptions{});
  const SolveResponse via_engine =
      engine.submit(SolveRequest::generated("c5", {}, 7));

  util::Xoshiro256 rng(7);
  const gen::Instance manual = gen::workload_instance("c5", {}, rng);
  const SolveResponse direct = test::solve_builtin(manual.family);
  EXPECT_EQ(via_engine.wavelengths, direct.wavelengths);
  EXPECT_EQ(via_engine.load, direct.load);
  EXPECT_EQ(via_engine.strategy, direct.strategy);
}

TEST(EngineSubmitTest, FileRequestRoundTripsAnInstance) {
  const ChainInstance inst;
  const std::string path = testing::TempDir() + "/wdag_api_instance.txt";
  {
    std::ofstream out(path);
    out << paths::to_instance_text(inst.family);
  }
  Engine engine(EngineOptions{});
  const SolveResponse from_file =
      engine.submit(SolveRequest::from_file(path));
  const SolveResponse inline_resp =
      engine.submit(SolveRequest::of(inst.family));
  EXPECT_EQ(from_file.wavelengths, inline_resp.wavelengths);
  EXPECT_EQ(from_file.load, inline_resp.load);
  EXPECT_EQ(from_file.strategy, inline_resp.strategy);
  std::remove(path.c_str());
}

TEST(EngineSubmitTest, RejectsEmptyAndAmbiguousRequests) {
  Engine engine(EngineOptions{});
  EXPECT_THROW((void)engine.submit(SolveRequest{}), wdag::InvalidArgument);

  const ChainInstance inst;
  SolveRequest both = SolveRequest::of(inst.family);
  both.file = "also-a-file.txt";
  EXPECT_THROW((void)engine.submit(both), wdag::InvalidArgument);
}

TEST(EngineSubmitTest, RejectsUnknownGeneratorAndStrategyNames) {
  Engine engine(EngineOptions{});
  EXPECT_THROW((void)engine.submit(SolveRequest::generated("no-such-gen")),
               wdag::InvalidArgument);
  const ChainInstance inst;
  SolveRequest req = SolveRequest::of(inst.family);
  req.force_strategy = "no-such-strategy";
  EXPECT_THROW((void)engine.submit(req), wdag::InvalidArgument);
}

TEST(EngineSubmitTest, NonDagHostsAreADomainError) {
  Engine engine(EngineOptions{});
  const graph::Digraph g = test::directed_triangle();
  paths::DipathFamily family(g);
  family.add_through({0, 1});
  EXPECT_THROW((void)engine.submit(SolveRequest::of(family)),
               wdag::DomainError);
}

TEST(EngineSubmitTest, ForceByNameRunsTheNamedStrategy) {
  Engine engine(EngineOptions{});
  const ChainInstance inst;
  SolveRequest req = SolveRequest::of(inst.family);
  req.force_strategy = "exact";
  const SolveResponse r = engine.submit(req);
  EXPECT_EQ(r.strategy, core::kStrategyExact);
  EXPECT_EQ(r.strategy_name, "exact");
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(r.wavelengths, r.load);
}

// ---------------------------------------------------------------------------
// Custom strategies.
// ---------------------------------------------------------------------------

TEST(EngineStrategyTest, RegisteredStrategyTakesDispatchPrecedence) {
  Engine engine = uncertified_engine();
  const StrategyId id = engine.register_strategy(
      std::make_unique<RainbowStrategy>());
  EXPECT_EQ(id, core::kBuiltinStrategyCount);
  EXPECT_EQ(engine.strategies().size(), core::kBuiltinStrategyCount + 1);
  EXPECT_EQ(engine.strategies().find("rainbow"), id);
  EXPECT_EQ(engine.strategies().names()[id], "rainbow");

  // Applicable to every DAG and newest in the registry: it shadows even
  // the Theorem-1 regime.
  const ChainInstance inst;
  const SolveResponse r = engine.submit(SolveRequest::of(inst.family));
  EXPECT_EQ(r.strategy, id);
  EXPECT_EQ(r.strategy_name, "rainbow");
  EXPECT_EQ(r.wavelengths, 2u);
  EXPECT_TRUE(conflict::is_valid_assignment(inst.family, r.coloring));
}

TEST(EngineStrategyTest, ApplicabilityGatesDispatchPerRegime) {
  Engine engine = uncertified_engine();
  const StrategyId id =
      engine.register_strategy(std::make_unique<UppOnlyStrategy>());

  // No internal cycle: the custom strategy is not applicable, Theorem 1
  // still wins.
  const ChainInstance chain_inst;
  EXPECT_EQ(engine.submit(SolveRequest::of(chain_inst.family)).strategy,
            core::kStrategyTheorem1);

  // UPP one-cycle host: the custom strategy shadows split-merge.
  util::Xoshiro256 rng(11);
  const gen::Instance upp =
      gen::random_upp_one_cycle_instance(rng, gen::UppCycleParams{}, 8);
  const SolveResponse r = engine.submit(SolveRequest::of(upp.family));
  EXPECT_EQ(r.strategy, id);
  EXPECT_EQ(r.strategy_name, "upp-only");
  EXPECT_TRUE(conflict::is_valid_assignment(upp.family, r.coloring));
}

TEST(EngineStrategyTest, DuplicateAndNullRegistrationsAreRejected) {
  Engine engine(EngineOptions{});
  EXPECT_THROW(engine.register_strategy(nullptr), wdag::InvalidArgument);
  EXPECT_NO_THROW(engine.register_strategy(std::make_unique<RainbowStrategy>()));
  EXPECT_THROW(engine.register_strategy(std::make_unique<RainbowStrategy>()),
               wdag::InvalidArgument);
}

TEST(EngineStrategyTest, InvalidCustomColoringsAreCaughtByValidation) {
  Engine engine = uncertified_engine();
  engine.register_strategy(std::make_unique<BrokenStrategy>());
  const ChainInstance inst;  // the two paths share arc 1 -> 2
  EXPECT_THROW((void)engine.submit(SolveRequest::of(inst.family)),
               wdag::InternalError);
}

TEST(EngineStrategyTest, MisreportedWavelengthCountsAreCaughtByValidation) {
  Engine engine = uncertified_engine();
  engine.register_strategy(std::make_unique<LyingStrategy>());
  // Three paths with load 2: the rainbow coloring uses 3 colors while
  // the strategy claims pi == 2, which would self-certify optimality.
  const ChainInstance inst;
  paths::DipathFamily three(inst.g);
  three.add_through({0, 1, 2});
  three.add_through({1, 2, 3});
  three.add_through({2, 3});
  EXPECT_THROW((void)engine.submit(SolveRequest::of(three)),
               wdag::InternalError);
}

TEST(EngineStrategyTest, BatchStatsAreRegistrySized) {
  Engine engine = uncertified_engine(2);
  const StrategyId id =
      engine.register_strategy(std::make_unique<RainbowStrategy>());

  const ChainInstance inst;
  const std::vector<paths::DipathFamily> families(6, inst.family);
  const core::BatchReport report =
      engine.run_batch(BatchRequest::of(families));

  ASSERT_EQ(report.strategy_counts.size(), core::kBuiltinStrategyCount + 1);
  ASSERT_EQ(report.strategy_names.size(), core::kBuiltinStrategyCount + 1);
  EXPECT_EQ(report.strategy_names[id], "rainbow");
  EXPECT_EQ(report.count(id), 6u);
  EXPECT_EQ(report.count("rainbow"), 6u);
  EXPECT_EQ(report.count(core::kStrategyTheorem1), 0u);
  EXPECT_EQ(report.failure_count, 0u);
  // The custom strategy shows up in the rendered histogram and rows.
  const std::string histogram = report.histogram_table().to_csv();
  EXPECT_NE(histogram.find("rainbow"), std::string::npos);
  const std::string rows = report.rows_table(false).to_csv();
  EXPECT_NE(rows.find("rainbow"), std::string::npos);
}

TEST(EngineStrategyTest, BatchCanForceACustomStrategyByName) {
  Engine engine = uncertified_engine(2);
  engine.register_strategy(std::make_unique<UppOnlyStrategy>());

  // Force it everywhere, even where dispatch would never pick it.
  const ChainInstance inst;
  const std::vector<paths::DipathFamily> families(3, inst.family);
  BatchRequest request = BatchRequest::of(families);
  request.force_strategy = "upp-only";
  const core::BatchReport report = engine.run_batch(request);
  EXPECT_EQ(report.count("upp-only"), 3u);
  EXPECT_EQ(report.failure_count, 0u);
}

// ---------------------------------------------------------------------------
// Batch request plumbing.
// ---------------------------------------------------------------------------

TEST(EngineBatchTest, GeneratedBatchMatchesTheLegacyEntryPoint) {
  EngineOptions options;
  options.threads = 2;
  Engine engine(options);

  BatchRequest request = BatchRequest::generated("random-upp", 80);
  request.options.seed = 4242;
  request.options.chunk = 8;
  const core::BatchReport via_engine = engine.run_batch(request);

  core::BatchOptions legacy_options;
  legacy_options.seed = 4242;
  legacy_options.chunk = 8;
  legacy_options.threads = 1;
  const core::BatchReport legacy = core::solve_generated_batch(
      80,
      [](util::Xoshiro256& rng, std::size_t) {
        return gen::workload_instance("random-upp", {}, rng);
      },
      core::SolveOptions{}, legacy_options);

  EXPECT_EQ(via_engine.rows_table(false).to_csv(),
            legacy.rows_table(false).to_csv());
  EXPECT_EQ(via_engine.strategy_counts, legacy.strategy_counts);
  EXPECT_EQ(via_engine.optimal_count, legacy.optimal_count);
}

TEST(EngineBatchTest, CustomGeneratorCallbackAndFailureCapture) {
  Engine engine(EngineOptions{});
  BatchRequest request;
  request.generate = [](util::Xoshiro256& rng, std::size_t index) {
    if (index == 2) throw wdag::InvalidArgument("instance 2 is cursed");
    return test::mixed_regime_instance(rng, index);
  };
  request.count = 5;
  const core::BatchReport report = engine.run_batch(request);
  EXPECT_EQ(report.instance_count, 5u);
  EXPECT_EQ(report.failure_count, 1u);
  ASSERT_EQ(report.entries.size(), 5u);
  EXPECT_TRUE(report.entries[2].failed);
  EXPECT_NE(report.entries[2].error.find("cursed"), std::string::npos);
}

TEST(EngineBatchTest, RejectsAmbiguousSources) {
  Engine engine(EngineOptions{});
  BatchRequest request = BatchRequest::generated("random-upp", 4);
  request.generate = [](util::Xoshiro256& rng, std::size_t i) {
    return test::mixed_regime_instance(rng, i);
  };
  EXPECT_THROW((void)engine.run_batch(request), wdag::InvalidArgument);

  // Pre-built families together with a generated source is ambiguous too.
  const ChainInstance inst;
  const std::vector<paths::DipathFamily> families(2, inst.family);
  BatchRequest mixed = BatchRequest::generated("random-upp", 4);
  mixed.families = families;
  EXPECT_THROW((void)engine.run_batch(mixed), wdag::InvalidArgument);
}

}  // namespace
