// Result sinks: byte-equivalence of CsvStreamSink with the legacy --csv
// path across thread counts and seeds, in-order delivery, JSON shape,
// aggregate folding, and multi-sink fan-out in one pass.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "wdag/wdag.hpp"

namespace {

using namespace wdag;

constexpr std::size_t kCount = 97;

/// The engine-side batch request every test in this file runs.
BatchRequest request_for(std::uint64_t seed) {
  BatchRequest request = BatchRequest::generated("random-upp", kCount);
  request.options.seed = seed;
  request.options.chunk = 8;
  return request;
}

/// The legacy reference: same workload through solve_generated_batch, one
/// thread, rendered via rows_table — the pre-sink `--csv` code path.
std::string legacy_csv(std::uint64_t seed) {
  core::BatchOptions options;
  options.seed = seed;
  options.chunk = 8;
  options.threads = 1;
  const core::BatchReport report = core::solve_generated_batch(
      kCount,
      [](util::Xoshiro256& rng, std::size_t) {
        return gen::workload_instance("random-upp", {}, rng);
      },
      core::SolveOptions{}, options);
  return report.rows_table(/*with_latency=*/false).to_csv();
}

/// Reads a whole file into a string.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Records the sink lifecycle: begin/end counts and every row index.
class RecordingSink final : public ResultSink {
 public:
  std::vector<std::size_t> indices;
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t rows_before_begin = 0;
  std::size_t instance_count_at_end = 0;

  void row(const core::BatchEntry& entry) override {
    if (begins == 0) ++rows_before_begin;
    indices.push_back(entry.index);
  }

 protected:
  void on_begin(const BatchStreamInfo&) override { ++begins; }
  void on_end(const core::BatchReport& report) override {
    ++ends;
    instance_count_at_end = report.instance_count;
  }
};

TEST(CsvStreamSinkTest, ByteIdenticalToLegacyCsvAcrossThreadsAndSeeds) {
  for (const std::uint64_t seed : {std::uint64_t{4242}, std::uint64_t{99}}) {
    const std::string want = legacy_csv(seed);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      EngineOptions options;
      options.threads = threads;
      Engine engine(options);
      std::ostringstream out;
      CsvStreamSink sink(out);
      BatchRequest request = request_for(seed);
      request.sinks = {&sink};
      const core::BatchReport report = engine.run_batch(request);
      EXPECT_EQ(out.str(), want) << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(report.instance_count, kCount);
    }
  }
}

TEST(CsvStreamSinkTest, FileBackedSinkProducesTheSameBytes) {
  const std::string path = testing::TempDir() + "/wdag_api_stream.csv";
  EngineOptions options;
  options.threads = 4;
  Engine engine(options);

  BatchRequest streamed = request_for(4242);
  streamed.options.keep_entries = false;
  {
    std::ofstream out(path);
    CsvStreamSink sink(out);
    streamed.sinks = {&sink};
    (void)engine.run_batch(streamed);
  }

  EXPECT_EQ(slurp(path), legacy_csv(4242));
  std::remove(path.c_str());
}

TEST(CsvStreamSinkTest, ConstantMemoryModeStreamsTheSameBytes) {
  Engine engine(EngineOptions{});
  std::ostringstream kept, dropped;
  CsvStreamSink kept_sink(kept), dropped_sink(dropped);

  BatchRequest keep = request_for(7);
  keep.sinks = {&kept_sink};
  BatchRequest drop = request_for(7);
  drop.options.keep_entries = false;
  drop.sinks = {&dropped_sink};

  const core::BatchReport keep_report = engine.run_batch(keep);
  const core::BatchReport drop_report = engine.run_batch(drop);
  EXPECT_EQ(kept.str(), dropped.str());
  EXPECT_FALSE(keep_report.entries.empty());
  EXPECT_TRUE(drop_report.entries.empty());
  EXPECT_EQ(keep_report.strategy_counts, drop_report.strategy_counts);
}

TEST(ResultSinkTest, RowsArriveInInstanceOrderAtAnyThreadCount) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    EngineOptions options;
    options.threads = threads;
    Engine engine(options);
    RecordingSink sink;
    BatchRequest request = request_for(123);
    request.options.chunk = 4;  // many chunks to reorder
    request.sinks = {&sink};
    (void)engine.run_batch(request);

    EXPECT_EQ(sink.begins, 1u);
    EXPECT_EQ(sink.ends, 1u);
    EXPECT_EQ(sink.rows_before_begin, 0u);
    EXPECT_EQ(sink.instance_count_at_end, kCount);
    ASSERT_EQ(sink.indices.size(), kCount);
    for (std::size_t i = 0; i < sink.indices.size(); ++i) {
      EXPECT_EQ(sink.indices[i], i) << "threads=" << threads;
    }
  }
}

TEST(AggregateSinkTest, TotalsMatchTheReportWithoutEntries) {
  EngineOptions options;
  options.threads = 2;
  Engine engine(options);
  AggregateSink sink;
  BatchRequest request = request_for(777);
  request.options.keep_entries = false;  // aggregates must survive anyway
  request.sinks = {&sink};
  const core::BatchReport report = engine.run_batch(request);

  const AggregateSink::Totals& totals = sink.totals();
  EXPECT_EQ(totals.instances, report.instance_count);
  EXPECT_EQ(totals.failures, report.failure_count);
  EXPECT_EQ(totals.optimal, report.optimal_count);
  EXPECT_EQ(totals.total_wavelengths, report.total_wavelengths);
  EXPECT_EQ(totals.total_load, report.total_load);
  EXPECT_EQ(totals.strategy_counts, report.strategy_counts);
  // The rendered table names every registry strategy.
  const std::string table = sink.table().to_csv();
  EXPECT_NE(table.find("theorem1"), std::string::npos);
  EXPECT_NE(table.find("dsatur"), std::string::npos);
}

TEST(AggregateSinkTest, OutlivesTheBatchReportItWasFilledFrom) {
  Engine engine(EngineOptions{});
  AggregateSink sink;
  BatchRequest request = request_for(3);
  request.sinks = {&sink};
  // Discard the report: the sink must not dangle into it (it owns a copy
  // of the strategy names).
  (void)engine.run_batch(request);
  EXPECT_EQ(sink.totals().instances, kCount);
  const std::string table = sink.table().to_csv();
  EXPECT_NE(table.find("theorem1"), std::string::npos);
}

TEST(JsonSinkTest, StreamsOneObjectPerRowPlusTheAggregateReport) {
  Engine engine(EngineOptions{});
  std::ostringstream out;
  JsonSink sink(out);
  BatchRequest request = request_for(5);
  request.sinks = {&sink};
  const core::BatchReport report = engine.run_batch(request);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  std::string last;
  while (std::getline(lines, line)) {
    ++n;
    last = line;
    EXPECT_EQ(line.front(), '{') << n;
    EXPECT_EQ(line.back(), '}') << n;
  }
  EXPECT_EQ(n, kCount + 1);  // one per row + the final report
  EXPECT_NE(out.str().find("\"index\":0,"), std::string::npos);
  EXPECT_NE(out.str().find("\"strategy\":"), std::string::npos);
  EXPECT_EQ(last, report.to_json());
}

TEST(ResultSinkTest, MultipleSinksShareOnePassOverTheBatch) {
  Engine engine(EngineOptions{});
  std::ostringstream csv_out, json_out;
  CsvStreamSink csv(csv_out);
  JsonSink json(json_out);
  AggregateSink aggregate;

  BatchRequest request = request_for(4242);
  request.sinks = {&csv, &json, &aggregate};
  const core::BatchReport report = engine.run_batch(request);

  EXPECT_EQ(csv_out.str(), legacy_csv(4242));
  EXPECT_EQ(aggregate.totals().instances, report.instance_count);
  EXPECT_FALSE(json_out.str().empty());
}

}  // namespace
