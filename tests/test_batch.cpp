// Randomized cross-check tier for the parallel batch solver.
//
// Over hundreds of seeded random instances spanning every generator regime
// (trees, repaired DAGs, UPP one-cycle skeletons, general DAGs) we assert
// the batch engine's three invariants:
//   1. every returned coloring is a valid wavelength assignment,
//   2. wavelengths >= load (pi is a lower bound, paper §1),
//   3. DSATUR agrees with the exact branch-and-bound whenever the conflict
//      graph is small enough (<= 20 vertices) to certify cheaply.
// Plus the determinism contract: identical seeds give identical reports
// regardless of thread count.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "conflict/coloring.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "api/engine.hpp"
#include "api/request.hpp"
#include "api/sink.hpp"
#include "core/batch.hpp"
#include "gen/family_gen.hpp"
#include "gen/instance.hpp"
#include "gen/random_dag.hpp"
#include "gen/upp_gen.hpp"
#include "helpers.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag;
using core::BatchOptions;
using core::BatchReport;
using core::StrategyId;
using core::SolveOptions;
using gen::Instance;
using util::Xoshiro256;

/// The shared mixed-regime stream (tests/helpers.hpp) as a generator.
Instance mixed_instance(Xoshiro256& rng, std::size_t index) {
  return test::mixed_regime_instance(rng, index);
}

/// Builds the workload up front so validity can be cross-checked against
/// the original families after the batch returns.
std::vector<Instance> build_workload(std::size_t count, std::uint64_t seed) {
  // One sequential RNG stream — deliberately NOT the engine's per-chunk
  // derivation; these instances exist to cross-check solve_batch against
  // the originals, not to reproduce solve_generated_batch's stream.
  std::vector<Instance> instances;
  instances.reserve(count);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    instances.push_back(mixed_instance(rng, i));
  }
  return instances;
}

std::vector<paths::DipathFamily> families_of(
    const std::vector<Instance>& instances) {
  std::vector<paths::DipathFamily> families;
  families.reserve(instances.size());
  for (const Instance& inst : instances) families.push_back(inst.family);
  return families;
}

TEST(BatchCrossCheckTest, RandomizedInstancesSatisfySolverInvariants) {
  constexpr std::size_t kInstances = 240;  // >= 200 per the test-tier contract
  const std::vector<Instance> workload = build_workload(kInstances, 20260730);
  const std::vector<paths::DipathFamily> families = families_of(workload);

  BatchOptions batch_options;
  batch_options.keep_colorings = true;
  const BatchReport report =
      core::solve_batch(families, SolveOptions{}, batch_options);

  ASSERT_EQ(report.entries.size(), kInstances);
  EXPECT_EQ(report.failure_count, 0u);

  std::size_t exact_checked = 0;
  for (std::size_t i = 0; i < kInstances; ++i) {
    const auto& entry = report.entries[i];
    const auto& family = families[i];
    ASSERT_FALSE(entry.failed) << "instance " << i << ": " << entry.error;

    // (1) the coloring is a valid wavelength assignment.
    EXPECT_TRUE(conflict::is_valid_assignment(family, entry.coloring))
        << "instance " << i;

    // (2) pi(G,P) is a lower bound on the wavelengths used.
    EXPECT_EQ(entry.load, paths::max_load(family)) << "instance " << i;
    EXPECT_GE(entry.wavelengths, entry.load) << "instance " << i;

    // (3) cross-check DSATUR against the exact solver on small conflict
    // graphs; the solver's own result can never beat the exact optimum.
    const conflict::ConflictGraph cg(family);
    if (cg.size() > 0 && cg.size() <= 20) {
      ++exact_checked;
      const auto exact = conflict::chromatic_number(cg);
      ASSERT_TRUE(exact.proven) << "instance " << i;
      EXPECT_GE(entry.wavelengths, exact.chromatic_number) << "instance " << i;
      const auto dsatur = conflict::dsatur_coloring(cg);
      EXPECT_TRUE(conflict::is_valid_coloring(cg, dsatur)) << "instance " << i;
      EXPECT_EQ(conflict::num_colors(dsatur), exact.chromatic_number)
          << "instance " << i << ": DSATUR disagrees with exact";
      if (entry.optimal) {
        EXPECT_EQ(entry.wavelengths, exact.chromatic_number)
            << "instance " << i;
      }
    }
  }
  // The small-instance cross-check must actually fire on a healthy slice.
  EXPECT_GE(exact_checked, kInstances / 4);
}

TEST(BatchCrossCheckTest, DispatchHistogramSpansMultipleStrategies) {
  const std::vector<Instance> workload = build_workload(120, 99);
  const std::vector<paths::DipathFamily> families = families_of(workload);
  const BatchReport report = core::solve_batch(families);
  std::size_t methods_hit = 0;
  for (const StrategyId id :
       {core::kStrategyTheorem1, core::kStrategySplitMerge,
        core::kStrategyDsatur, core::kStrategyExact}) {
    if (report.count(id) > 0) ++methods_hit;
  }
  EXPECT_GE(methods_hit, 2u);
  EXPECT_EQ(report.failure_count, 0u);
}

TEST(BatchDeterminismTest, IdenticalSeedsGiveIdenticalReportsAcrossThreads) {
  auto run = [](std::size_t threads) {
    BatchOptions opts;
    opts.threads = threads;
    opts.chunk = 8;
    opts.seed = 4242;
    return core::solve_generated_batch(150, mixed_instance, SolveOptions{},
                                       opts);
  };
  const BatchReport one = run(1);
  const BatchReport many = run(4);
  ASSERT_EQ(one.entries.size(), many.entries.size());
  for (std::size_t i = 0; i < one.entries.size(); ++i) {
    EXPECT_EQ(one.entries[i].strategy, many.entries[i].strategy) << i;
    EXPECT_EQ(one.entries[i].wavelengths, many.entries[i].wavelengths) << i;
    EXPECT_EQ(one.entries[i].load, many.entries[i].load) << i;
    EXPECT_EQ(one.entries[i].optimal, many.entries[i].optimal) << i;
  }
  // The deterministic (latency-free) CSV rendering is byte-identical.
  EXPECT_EQ(one.rows_table(false).to_csv(), many.rows_table(false).to_csv());
  // And a different seed produces a different stream (sanity: the seed is
  // actually plumbed through to the generators).
  BatchOptions other;
  other.chunk = 8;
  other.seed = 4243;
  const BatchReport different = core::solve_generated_batch(
      150, mixed_instance, SolveOptions{}, other);
  EXPECT_NE(one.rows_table(false).to_csv(),
            different.rows_table(false).to_csv());
}

TEST(BatchReportTest, AggregatesCountsAndPercentiles) {
  const std::vector<Instance> workload = build_workload(64, 7);
  const std::vector<paths::DipathFamily> families = families_of(workload);
  const BatchReport report = core::solve_batch(families);

  std::size_t total = report.failure_count;
  for (const StrategyId id :
       {core::kStrategyTheorem1, core::kStrategySplitMerge,
        core::kStrategyDsatur, core::kStrategyExact}) {
    total += report.count(id);
  }
  EXPECT_EQ(total, report.entries.size());
  EXPECT_LE(report.latency.p50, report.latency.p90);
  EXPECT_LE(report.latency.p90, report.latency.p99);
  EXPECT_LE(report.latency.p99, report.latency.max);
  EXPECT_GT(report.instances_per_second(), 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);

  const util::Table rows = report.rows_table();
  EXPECT_EQ(rows.rows(), report.entries.size());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"instances\":64"), std::string::npos);
  EXPECT_NE(json.find("\"methods\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
}

TEST(BatchFailureTest, PerInstanceFailuresAreCapturedNotFatal) {
  // A directed triangle is outside the solver's domain (not a DAG); the
  // batch must record the failure and keep solving its neighbours.
  const auto triangle = test::directed_triangle();
  const auto chain_graph = test::chain(4);
  std::vector<paths::DipathFamily> families;
  paths::DipathFamily good(chain_graph);
  good.add_through({0, 1, 2});
  good.add_through({1, 2, 3});
  paths::DipathFamily bad(triangle);
  bad.add_through({0, 1});
  families.push_back(good);
  families.push_back(bad);
  families.push_back(good);

  const BatchReport report = core::solve_batch(families);
  ASSERT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.failure_count, 1u);
  EXPECT_FALSE(report.entries[0].failed);
  EXPECT_TRUE(report.entries[1].failed);
  EXPECT_FALSE(report.entries[2].failed);
  EXPECT_FALSE(report.entries[1].error.empty());
  // The failed row renders as "error" in the table and counts in json.
  const std::string csv = report.rows_table(false).to_csv();
  EXPECT_NE(csv.find("error"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"failures\":1"), std::string::npos);
}

TEST(BatchEdgeCaseTest, EmptyBatchAndEmptyFamiliesAreFine) {
  const BatchReport empty = core::solve_batch({});
  EXPECT_TRUE(empty.entries.empty());
  EXPECT_EQ(empty.instances_per_second(), 0.0);
  EXPECT_EQ(empty.rows_table().rows(), 0u);

  // A family with zero paths solves trivially (0 wavelengths, 0 load).
  const auto g = test::chain(3);
  std::vector<paths::DipathFamily> families(2, paths::DipathFamily(g));
  const BatchReport report = core::solve_batch(families);
  EXPECT_EQ(report.failure_count, 0u);
  for (const auto& e : report.entries) {
    EXPECT_EQ(e.wavelengths, 0u);
    EXPECT_EQ(e.load, 0u);
  }
}

TEST(BatchOptionsTest, RejectsZeroChunk) {
  BatchOptions opts;
  opts.chunk = 0;
  const auto g = test::chain(3);
  std::vector<paths::DipathFamily> families(1, paths::DipathFamily(g));
  EXPECT_THROW(core::solve_batch(families, SolveOptions{}, opts),
               wdag::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Streaming sink + constant-memory mode.
// ---------------------------------------------------------------------------

/// Reads a whole file into a string.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(BatchStreamingTest, StreamedCsvMatchesInMemoryCsvAtAnyThreadCount) {
  const std::string path =
      testing::TempDir() + "/wdag_stream_test.csv";
  BatchOptions in_memory;
  in_memory.seed = 4242;
  in_memory.threads = 1;
  const BatchReport reference = core::solve_generated_batch(
      97, mixed_instance, SolveOptions{}, in_memory);
  const std::string want = reference.rows_table(false).to_csv();

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    api::EngineOptions engine_opts;
    engine_opts.threads = threads;
    api::Engine engine(engine_opts);

    api::BatchRequest request;
    request.generate = mixed_instance;
    request.count = 97;
    request.options = in_memory;
    request.options.threads = 0;  // the engine's pool runs the batch
    request.options.keep_entries = false;

    BatchReport report;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good()) << path;
      api::CsvStreamSink sink(out);
      request.sinks = {&sink};
      report = engine.run_batch(request);
    }
    EXPECT_EQ(slurp(path), want) << "threads=" << threads;
    EXPECT_TRUE(report.entries.empty());
    EXPECT_EQ(report.instance_count, 97u);
  }
}

TEST(BatchStreamingTest, DroppedEntriesKeepAggregatesExact) {
  BatchOptions keep;
  keep.seed = 777;
  keep.threads = 2;
  const BatchReport full = core::solve_generated_batch(
      64, mixed_instance, SolveOptions{}, keep);

  BatchOptions drop = keep;
  drop.keep_entries = false;
  const BatchReport lean = core::solve_generated_batch(
      64, mixed_instance, SolveOptions{}, drop);

  EXPECT_TRUE(lean.entries.empty());
  EXPECT_EQ(lean.instance_count, full.instance_count);
  EXPECT_EQ(lean.failure_count, full.failure_count);
  EXPECT_EQ(lean.optimal_count, full.optimal_count);
  EXPECT_EQ(lean.total_wavelengths, full.total_wavelengths);
  EXPECT_EQ(lean.total_load, full.total_load);
  for (const StrategyId id :
       {core::kStrategyTheorem1, core::kStrategySplitMerge,
        core::kStrategyDsatur, core::kStrategyExact}) {
    EXPECT_EQ(lean.count(id), full.count(id));
  }
}

}  // namespace
