// Unit tests for the structural classifier driving solver dispatch.

#include <gtest/gtest.h>

#include "dag/classify.hpp"
#include "gen/paper_instances.hpp"
#include "gen/upp_gen.hpp"
#include "helpers.hpp"

namespace {

using namespace wdag::dag;

TEST(ClassifyTest, Chain) {
  const auto r = classify(wdag::test::chain(5));
  EXPECT_TRUE(r.is_dag);
  EXPECT_TRUE(r.is_upp);
  EXPECT_EQ(r.internal_cycles, 0u);
  EXPECT_TRUE(r.wavelengths_equal_load());
  EXPECT_FALSE(r.theorem6_applies());
  EXPECT_EQ(r.num_vertices, 5u);
  EXPECT_EQ(r.num_arcs, 4u);
  EXPECT_EQ(r.num_sources, 1u);
  EXPECT_EQ(r.num_sinks, 1u);
}

TEST(ClassifyTest, DiamondEqualityRegimeButNotUpp) {
  const auto r = classify(wdag::test::diamond());
  EXPECT_TRUE(r.is_dag);
  EXPECT_FALSE(r.is_upp);
  EXPECT_TRUE(r.wavelengths_equal_load());
}

TEST(ClassifyTest, GuardedDiamondLeavesEqualityRegime) {
  const auto r = classify(wdag::test::guarded_diamond());
  EXPECT_FALSE(r.wavelengths_equal_load());
  EXPECT_EQ(r.internal_cycles, 1u);
}

TEST(ClassifyTest, Theorem6Regime) {
  const auto inst = wdag::gen::theorem2_instance(3);
  const auto r = classify(*inst.graph);
  EXPECT_TRUE(r.theorem6_applies());
  EXPECT_TRUE(r.is_upp);
  EXPECT_EQ(r.internal_cycles, 1u);
}

TEST(ClassifyTest, MultiCycleUpp) {
  const auto inst =
      wdag::gen::upp_multi_cycle_skeleton(3, wdag::gen::UppCycleParams{});
  const auto r = classify(*inst.graph);
  EXPECT_TRUE(r.is_dag);
  EXPECT_TRUE(r.is_upp);
  EXPECT_EQ(r.internal_cycles, 3u);
  EXPECT_FALSE(r.theorem6_applies());
}

TEST(ClassifyTest, NonDag) {
  const auto r = classify(wdag::test::directed_triangle());
  EXPECT_FALSE(r.is_dag);
  EXPECT_FALSE(r.wavelengths_equal_load());
  EXPECT_FALSE(r.theorem6_applies());
}

TEST(ClassifyTest, ReportStringMentionsRegime) {
  const auto r1 = report_to_string(classify(wdag::test::chain(3)));
  EXPECT_NE(r1.find("Theorem 1"), std::string::npos);
  const auto r2 =
      report_to_string(classify(*wdag::gen::theorem2_instance(2).graph));
  EXPECT_NE(r2.find("Theorem 6"), std::string::npos);
  const auto r3 = report_to_string(classify(wdag::test::directed_triangle()));
  EXPECT_NE(r3.find("is DAG:          no"), std::string::npos);
  const auto r4 =
      report_to_string(classify(*wdag::gen::figure1_pathological(3).graph));
  EXPECT_NE(r4.find("unbounded"), std::string::npos);
}

}  // namespace
