// Unit tests for the CLI flag parser.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

using wdag::util::Cli;

Cli parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Cli(static_cast<int>(v.size()), v.data());
}

TEST(CliTest, ProgramName) {
  const auto cli = parse({"prog"});
  EXPECT_EQ(cli.program(), "prog");
  EXPECT_TRUE(cli.positional().empty());
}

TEST(CliTest, EqualsSyntax) {
  const auto cli = parse({"prog", "--n=12", "--name=alpha"});
  EXPECT_EQ(cli.get_int("n", 0), 12);
  EXPECT_EQ(cli.get("name", ""), "alpha");
}

TEST(CliTest, SpaceSyntax) {
  const auto cli = parse({"prog", "--n", "7"});
  EXPECT_EQ(cli.get_int("n", 0), 7);
}

TEST(CliTest, BooleanFlag) {
  const auto cli = parse({"prog", "--verbose"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(CliTest, BooleanFlagBeforeAnotherFlag) {
  const auto cli = parse({"prog", "--verbose", "--n", "3"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get_int("n", 0), 3);
}

TEST(CliTest, Positional) {
  const auto cli = parse({"prog", "input.txt", "--n", "1", "more"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "more");
}

TEST(CliTest, Defaults) {
  const auto cli = parse({"prog"});
  EXPECT_EQ(cli.get("missing", "dft"), "dft");
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
}

TEST(CliTest, DoubleParsing) {
  const auto cli = parse({"prog", "--p=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("p", 0), 0.25);
}

TEST(CliTest, NonNumericIntThrows) {
  const auto cli = parse({"prog", "--n=abc"});
  EXPECT_THROW((void)cli.get_int("n", 0), wdag::InvalidArgument);
}

TEST(CliTest, BareDoubleDashThrows) {
  EXPECT_THROW(parse({"prog", "--"}), wdag::InvalidArgument);
}

TEST(CliTest, NegativeNumbers) {
  const auto cli = parse({"prog", "--n=-5"});
  EXPECT_EQ(cli.get_int("n", 0), -5);
  const auto space = parse({"prog", "--p", "-0.5"});
  EXPECT_DOUBLE_EQ(space.get_double("p", 0), -0.5);
}

// Regression: strtoll saturates on overflow and only reports it via errno,
// so "9223372036854775808" used to parse silently as INT64_MAX.
TEST(CliTest, IntOverflowThrows) {
  const auto cli = parse({"prog", "--n=9223372036854775808"});
  EXPECT_THROW((void)cli.get_int("n", 0), wdag::InvalidArgument);
  const auto under = parse({"prog", "--n=-9223372036854775809"});
  EXPECT_THROW((void)under.get_int("n", 0), wdag::InvalidArgument);
}

// Regression: strtod turns "1e999" into +inf with errno=ERANGE, and
// accepts "inf"/"nan" outright; none of those are usable flag values.
TEST(CliTest, DoubleOverflowAndNonFiniteThrow) {
  for (const char* bad : {"--p=1e999", "--p=-1e999", "--p=inf", "--p=nan"}) {
    const auto cli = parse({"prog", bad});
    EXPECT_THROW((void)cli.get_double("p", 0), wdag::InvalidArgument)
        << bad;
  }
  // Small-but-representable values must keep parsing.
  const auto tiny = parse({"prog", "--p=1e-300"});
  EXPECT_DOUBLE_EQ(tiny.get_double("p", 0), 1e-300);
}

// Regression: `--a=--b` silently stored "--b" as the value of --a, hiding
// the typo'd flag; the space form `--a --b` already treats --a as boolean.
TEST(CliTest, EqualsSyntaxRejectsSwallowedFlag) {
  EXPECT_THROW(parse({"prog", "--out=--events"}), wdag::InvalidArgument);
}

TEST(CliTest, SpaceSyntaxDoesNotSwallowTheNextFlag) {
  const auto cli = parse({"prog", "--out", "--events", "log.jsonl"});
  EXPECT_TRUE(cli.has("out"));
  EXPECT_EQ(cli.get("out", "x"), "");  // boolean, not "--events"
  EXPECT_EQ(cli.get("events", ""), "log.jsonl");
}

}  // namespace
