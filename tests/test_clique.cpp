// Unit tests for clique computations.

#include <gtest/gtest.h>

#include "conflict/clique.hpp"
#include "gen/paper_instances.hpp"
#include "paths/load.hpp"

namespace {

using namespace wdag::conflict;

ConflictGraph complete(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return ConflictGraph(n, edges);
}

ConflictGraph cycle(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return ConflictGraph(n, edges);
}

ConflictGraph petersen() {
  // Outer C5, inner 5-star polygon, spokes.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < 5; ++i) {
    edges.emplace_back(i, (i + 1) % 5);          // outer
    edges.emplace_back(5 + i, 5 + (i + 2) % 5);  // inner
    edges.emplace_back(i, 5 + i);                // spoke
  }
  return ConflictGraph(10, edges);
}

TEST(CliqueTest, EmptyGraph) {
  const ConflictGraph cg(0, {});
  EXPECT_TRUE(max_clique(cg).empty());
  EXPECT_EQ(clique_number(cg), 0u);
}

TEST(CliqueTest, EdgelessGraph) {
  const ConflictGraph cg(4, {});
  EXPECT_EQ(clique_number(cg), 1u);
}

TEST(CliqueTest, CompleteGraphs) {
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    EXPECT_EQ(clique_number(complete(n)), n) << n;
  }
}

TEST(CliqueTest, Cycles) {
  EXPECT_EQ(clique_number(cycle(5)), 2u);
  EXPECT_EQ(clique_number(cycle(3)), 3u);
  EXPECT_EQ(clique_number(cycle(8)), 2u);
}

TEST(CliqueTest, PetersenIsTriangleFree) {
  EXPECT_EQ(clique_number(petersen()), 2u);
}

TEST(CliqueTest, ResultIsAClique) {
  const auto cg = petersen();
  const auto c = max_clique(cg);
  EXPECT_TRUE(is_clique(cg, c));
}

TEST(CliqueTest, GreedyIsLowerBound) {
  for (const auto& cg : {complete(6), cycle(7), petersen()}) {
    const auto g = greedy_clique(cg);
    EXPECT_TRUE(is_clique(cg, g));
    EXPECT_LE(g.size(), clique_number(cg));
    EXPECT_GE(g.size(), 1u);
  }
}

TEST(CliqueTest, IsCliqueRejectsNonCliques) {
  const auto cg = cycle(5);
  EXPECT_FALSE(is_clique(cg, {0, 1, 2}));
  EXPECT_TRUE(is_clique(cg, {0, 1}));
  EXPECT_TRUE(is_clique(cg, {3}));
  EXPECT_TRUE(is_clique(cg, {}));
}

TEST(CliqueTest, WheelGraph) {
  // Hub 0 adjacent to C6 rim 1..6: clique number 3.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 1; i <= 6; ++i) {
    edges.emplace_back(0, i);
    edges.emplace_back(i, i == 6 ? 1 : i + 1);
  }
  EXPECT_EQ(clique_number(ConflictGraph(7, edges)), 3u);
}

TEST(CliqueTest, PaperInstanceCliques) {
  // Figure 1: complete conflict graph -> clique == k while load == 2.
  const auto fig1 = wdag::gen::figure1_pathological(5);
  EXPECT_EQ(clique_number(ConflictGraph(fig1.family)), 5u);
  EXPECT_EQ(wdag::paths::max_load(fig1.family), 2u);
  // Figure 3 (C5): clique 2 == load 2.
  const auto fig3 = wdag::gen::figure3_instance();
  EXPECT_EQ(clique_number(ConflictGraph(fig3.family)), 2u);
}

}  // namespace
