// Unit tests for coloring heuristics and validation.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "conflict/coloring.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "gen/family_gen.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag::conflict;
using wdag::paths::Dipath;
using wdag::paths::DipathFamily;

ConflictGraph c5() {
  return ConflictGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
}

TEST(ColoringBasicsTest, NumColorsAndNormalize) {
  Coloring c = {5, 9, 5, 2};
  EXPECT_EQ(num_colors(c), 3u);
  EXPECT_EQ(normalize_colors(c), 3u);
  EXPECT_EQ(c, (Coloring{0, 1, 0, 2}));
}

TEST(ColoringBasicsTest, ValidityChecks) {
  const auto cg = c5();
  EXPECT_TRUE(is_valid_coloring(cg, {0, 1, 0, 1, 2}));
  EXPECT_FALSE(is_valid_coloring(cg, {0, 0, 1, 0, 1}));  // edge (0,1) mono
  EXPECT_FALSE(is_valid_coloring(cg, {0, 1}));           // wrong size
}

TEST(ColoringBasicsTest, AssignmentValidationAgainstFamily) {
  const auto g = wdag::test::chain(4);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1}));
  fam.add(Dipath({1, 2}));
  fam.add(Dipath({2}));
  EXPECT_TRUE(is_valid_assignment(fam, {0, 1, 0}));
  EXPECT_FALSE(is_valid_assignment(fam, {0, 0, 1}));
  EXPECT_FALSE(is_valid_assignment(fam, {0, 1}));
}

TEST(GreedyColoringTest, ValidOnC5) {
  const auto cg = c5();
  const auto col = greedy_coloring(cg);
  EXPECT_TRUE(is_valid_coloring(cg, col));
  EXPECT_LE(num_colors(col), 3u);
}

TEST(GreedyColoringTest, OrderMatters) {
  // A path P4 colored in a bad order uses 3 colors; natural order uses 2.
  const ConflictGraph cg(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto natural = greedy_coloring(cg);
  EXPECT_EQ(num_colors(natural), 2u);
  const auto bad = greedy_coloring(cg, {0, 3, 1, 2});
  EXPECT_TRUE(is_valid_coloring(cg, bad));
}

TEST(GreedyColoringTest, RejectsBadOrder) {
  const auto cg = c5();
  EXPECT_THROW(greedy_coloring(cg, {0, 1}), wdag::InvalidArgument);
  EXPECT_THROW(greedy_coloring(cg, {0, 1, 2, 3, 9}), wdag::InvalidArgument);
}

TEST(DsaturTest, OptimalOnOddCycle) {
  const auto col = dsatur_coloring(c5());
  EXPECT_TRUE(is_valid_coloring(c5(), col));
  EXPECT_EQ(num_colors(col), 3u);  // chi(C5) == 3 and DSATUR achieves it
}

TEST(DsaturTest, OptimalOnEvenCycle) {
  const ConflictGraph c6(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  const auto col = dsatur_coloring(c6);
  EXPECT_EQ(num_colors(col), 2u);  // DSATUR is exact on bipartite graphs
}

TEST(DsaturTest, CompleteGraphNeedsN) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) edges.emplace_back(i, j);
  }
  const ConflictGraph k6(6, edges);
  EXPECT_EQ(num_colors(dsatur_coloring(k6)), 6u);
}

TEST(DsaturTest, ValidOnRandomInstances) {
  wdag::util::Xoshiro256 rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = wdag::gen::random_layered_dag(rng, 5, 4, 0.4);
    const auto fam = wdag::gen::random_walk_family(rng, g, 30, 1, 6);
    const ConflictGraph cg(fam);
    const auto col = dsatur_coloring(cg);
    EXPECT_TRUE(is_valid_coloring(cg, col));
    EXPECT_TRUE(is_valid_assignment(fam, col));
  }
}

TEST(ColoringCrossCheckTest, GraphAndFamilyValidatorsAgree) {
  wdag::util::Xoshiro256 rng(18);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = wdag::gen::random_layered_dag(rng, 4, 4, 0.5);
    const auto fam = wdag::gen::random_walk_family(rng, g, 20, 1, 5);
    const ConflictGraph cg(fam);
    // Random (mostly invalid) colorings must get identical verdicts.
    for (int probe = 0; probe < 20; ++probe) {
      Coloring col(fam.size());
      for (auto& c : col) c = static_cast<std::uint32_t>(rng.below(4));
      EXPECT_EQ(is_valid_coloring(cg, col), is_valid_assignment(fam, col));
    }
  }
}

TEST(ColoringBasicsTest, EmptyColoring) {
  Coloring c;
  EXPECT_EQ(num_colors(c), 0u);
  EXPECT_EQ(normalize_colors(c), 0u);
}

}  // namespace
