// Differential tests pinning the word-parallel coloring kernels to the
// scalar reference implementations they replaced.
//
// The optimized DSATUR and first-fit greedy must produce *byte-identical*
// colorings — same values, same tie-breaking — as the original scalar
// code on every workload family, because downstream artifacts (batch CSVs,
// dispatch histograms, paper tables) are pinned to their exact output.
// The reference implementations below are verbatim ports of the pre-
// optimization code, deliberately using only neighbors()/count() so they
// share no code path with the rewritten kernels.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "conflict/coloring.hpp"
#include "conflict/conflict_graph.hpp"
#include "gen/workloads.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace wdag;
using conflict::Coloring;
using conflict::ConflictGraph;
using util::Xoshiro256;

constexpr std::uint32_t kUncolored = UINT32_MAX;

/// Scalar first-fit greedy: O(n) bool-vector sweep per vertex (pre-PR).
Coloring reference_greedy(const ConflictGraph& cg,
                          const std::vector<std::size_t>& order) {
  Coloring colors(cg.size(), kUncolored);
  std::vector<bool> used;
  for (const std::size_t u : order) {
    used.assign(cg.size() + 1, false);
    const auto& row = cg.neighbors(u);
    for (std::size_t v = row.find_first(); v < cg.size();
         v = row.find_next(v)) {
      if (colors[v] != kUncolored) used[colors[v]] = true;
    }
    std::uint32_t c = 0;
    while (used[c]) ++c;
    colors[u] = c;
  }
  return colors;
}

/// Scalar DSATUR: n+1-bit saturation sets, O(n) argmax per step (pre-PR).
Coloring reference_dsatur(const ConflictGraph& cg) {
  const std::size_t n = cg.size();
  Coloring colors(n, kUncolored);
  std::vector<util::DynamicBitset> sat;
  sat.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sat.emplace_back(n + 1);

  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    std::size_t best_sat = 0, best_deg = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (colors[v] != kUncolored) continue;
      const std::size_t s = sat[v].count();
      const std::size_t d = cg.neighbors(v).count();
      if (best == n || s > best_sat || (s == best_sat && d > best_deg)) {
        best = v;
        best_sat = s;
        best_deg = d;
      }
    }
    std::uint32_t c = 0;
    while (sat[best].test(c)) ++c;
    colors[best] = c;
    const auto& row = cg.neighbors(best);
    for (std::size_t v = row.find_first(); v < n; v = row.find_next(v)) {
      sat[v].set(c);
    }
  }
  return colors;
}

/// Pre-PR normalize_colors: first-appearance remap by linear scan.
std::size_t reference_normalize(Coloring& c) {
  std::vector<std::uint32_t> remap;
  for (auto& col : c) {
    const auto it = std::find(remap.begin(), remap.end(), col);
    if (it == remap.end()) {
      remap.push_back(col);
      col = static_cast<std::uint32_t>(remap.size() - 1);
    } else {
      col = static_cast<std::uint32_t>(it - remap.begin());
    }
  }
  return remap.size();
}

gen::WorkloadParams small_params() {
  gen::WorkloadParams p;
  p.size = 24;
  p.paths = 24;
  p.rows = 4;
  p.cols = 5;
  p.layers = 4;
  p.width = 3;
  p.dim = 3;
  p.stages = 3;
  p.k = 3;
  p.h = 2;
  return p;
}

/// Natural 0..n-1 order.
std::vector<std::size_t> natural_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

TEST(ColoringDifferentialTest, DsaturMatchesReferenceOnEveryFamily) {
  const gen::WorkloadParams p = small_params();
  for (const std::string& name : gen::workload_names()) {
    Xoshiro256 rng(0xD5A70 + std::hash<std::string>{}(name));
    for (int round = 0; round < 4; ++round) {
      const gen::Instance inst = gen::workload_instance(name, p, rng);
      const ConflictGraph cg(inst.family);
      EXPECT_EQ(conflict::dsatur_coloring(cg), reference_dsatur(cg))
          << "family=" << name << " round=" << round;
    }
  }
}

TEST(ColoringDifferentialTest, GreedyMatchesReferenceOnEveryFamily) {
  const gen::WorkloadParams p = small_params();
  for (const std::string& name : gen::workload_names()) {
    Xoshiro256 rng(0x62EED + std::hash<std::string>{}(name));
    for (int round = 0; round < 4; ++round) {
      const gen::Instance inst = gen::workload_instance(name, p, rng);
      const ConflictGraph cg(inst.family);
      // Natural order and a deterministic shuffle.
      std::vector<std::size_t> order = natural_order(cg.size());
      EXPECT_EQ(conflict::greedy_coloring(cg, order),
                reference_greedy(cg, order))
          << "family=" << name << " round=" << round;
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.index(i)]);
      }
      EXPECT_EQ(conflict::greedy_coloring(cg, order),
                reference_greedy(cg, order))
          << "family=" << name << " round=" << round << " (shuffled)";
    }
  }
}

TEST(ColoringDifferentialTest, DegreeAndMaxDegreeMatchRowCounts) {
  const gen::WorkloadParams p = small_params();
  for (const std::string& name : gen::workload_names()) {
    Xoshiro256 rng(0xDE6 + std::hash<std::string>{}(name));
    const gen::Instance inst = gen::workload_instance(name, p, rng);
    const ConflictGraph cg(inst.family);
    std::size_t max_deg = 0;
    for (std::size_t v = 0; v < cg.size(); ++v) {
      EXPECT_EQ(cg.degree(v), cg.neighbors(v).count());
      max_deg = std::max(max_deg, cg.degree(v));
    }
    EXPECT_EQ(cg.max_degree(), max_deg) << "family=" << name;
  }
}

// The ISA-dispatch matrix: rebuilding the conflict graph and recoloring
// under every reachable SIMD tier (scalar / sse2 / avx2 / avx512, as
// forced by WDAG_FORCE_ISA in CI or set_active_tier here) must reproduce
// the scalar tier's adjacency rows and colorings byte for byte, on every
// workload family. A vectorized kernel that is merely "equivalent" but
// reorders ties or drifts a tail word fails here, not in production.
TEST(ColoringDifferentialTest, EveryIsaTierIsByteIdenticalOnEveryFamily) {
  namespace simd = util::simd;
  const simd::IsaTier original = simd::active_tier();
  const gen::WorkloadParams p = small_params();
  for (const std::string& name : gen::workload_names()) {
    Xoshiro256 rng(0x157A + std::hash<std::string>{}(name));
    const gen::Instance inst = gen::workload_instance(name, p, rng);

    simd::set_active_tier(simd::IsaTier::kScalar);
    const ConflictGraph ref_cg(inst.family);
    const std::size_t n = ref_cg.size();
    const std::size_t words = (n + 63) / 64;
    std::vector<std::vector<std::uint64_t>> ref_rows(n);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t w = 0; w < words; ++w) {
        ref_rows[v].push_back(ref_cg.neighbors(v).word(w));
      }
    }
    const Coloring ref_greedy = conflict::greedy_coloring(ref_cg);
    const Coloring ref_dsatur = conflict::dsatur_coloring(ref_cg);

    for (const simd::IsaTier tier : simd::reachable_tiers()) {
      simd::set_active_tier(tier);
      const ConflictGraph cg(inst.family);
      ASSERT_EQ(cg.size(), n) << "family=" << name;
      for (std::size_t v = 0; v < n; ++v) {
        std::vector<std::uint64_t> row_words;
        for (std::size_t w = 0; w < words; ++w) {
          row_words.push_back(cg.neighbors(v).word(w));
        }
        ASSERT_EQ(row_words, ref_rows[v])
            << "family=" << name << " tier=" << simd::tier_name(tier)
            << " row=" << v;
      }
      EXPECT_EQ(conflict::greedy_coloring(cg), ref_greedy)
          << "family=" << name << " tier=" << simd::tier_name(tier);
      EXPECT_EQ(conflict::dsatur_coloring(cg), ref_dsatur)
          << "family=" << name << " tier=" << simd::tier_name(tier);
    }
  }
  simd::set_active_tier(original);
}

TEST(ColoringDifferentialTest, NormalizeAndCountMatchReference) {
  Xoshiro256 rng(99);
  for (int round = 0; round < 50; ++round) {
    Coloring c(1 + rng.index(60));
    const bool sparse = round % 5 == 0;
    for (auto& col : c) {
      // Sparse rounds use huge scattered ids to force the sort fallback.
      col = sparse ? static_cast<std::uint32_t>(rng.below(UINT32_MAX))
                   : static_cast<std::uint32_t>(rng.below(12));
    }
    Coloring ref = c, opt = c;
    const std::size_t ref_k = reference_normalize(ref);
    EXPECT_EQ(conflict::num_colors(c),
              std::set<std::uint32_t>(c.begin(), c.end()).size());
    EXPECT_EQ(conflict::normalize_colors(opt), ref_k);
    EXPECT_EQ(opt, ref);
  }
}

}  // namespace
