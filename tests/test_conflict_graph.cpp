// Unit tests for conflict-graph construction.

#include <gtest/gtest.h>

#include "conflict/conflict_graph.hpp"
#include "gen/paper_instances.hpp"
#include "helpers.hpp"
#include "util/check.hpp"

namespace {

using wdag::conflict::ConflictGraph;
using wdag::paths::Dipath;
using wdag::paths::DipathFamily;

TEST(ConflictGraphTest, EmptyFamily) {
  const auto g = wdag::test::chain(3);
  const ConflictGraph cg{DipathFamily(g)};
  EXPECT_EQ(cg.size(), 0u);
  EXPECT_EQ(cg.num_edges(), 0u);
}

TEST(ConflictGraphTest, ChainOverlaps) {
  const auto g = wdag::test::chain(5);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1}));
  fam.add(Dipath({1, 2}));
  fam.add(Dipath({3}));
  const ConflictGraph cg(fam);
  EXPECT_TRUE(cg.adjacent(0, 1));
  EXPECT_FALSE(cg.adjacent(0, 2));
  EXPECT_FALSE(cg.adjacent(1, 2));
  EXPECT_EQ(cg.num_edges(), 1u);
  EXPECT_EQ(cg.degree(0), 1u);
  EXPECT_EQ(cg.degree(2), 0u);
}

TEST(ConflictGraphTest, SelfIsNeverAdjacent) {
  const auto g = wdag::test::chain(3);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1}));
  const ConflictGraph cg(fam);
  EXPECT_FALSE(cg.adjacent(0, 0));
}

TEST(ConflictGraphTest, IdenticalCopiesConflict) {
  const auto g = wdag::test::chain(3);
  DipathFamily fam(g);
  fam.add(Dipath({0}));
  fam.add(Dipath({0}));
  const ConflictGraph cg(fam);
  EXPECT_TRUE(cg.adjacent(0, 1));
}

TEST(ConflictGraphTest, Figure3IsC5) {
  const auto inst = wdag::gen::figure3_instance();
  const ConflictGraph cg(inst.family);
  ASSERT_EQ(cg.size(), 5u);
  EXPECT_EQ(cg.num_edges(), 5u);
  for (std::size_t v = 0; v < 5; ++v) EXPECT_EQ(cg.degree(v), 2u) << v;
  // C5 (odd cycle): exactly the paper's example.
  EXPECT_TRUE(cg.adjacent(0, 1));
  EXPECT_TRUE(cg.adjacent(1, 2));
  EXPECT_TRUE(cg.adjacent(2, 3));
  EXPECT_TRUE(cg.adjacent(3, 4));
  EXPECT_TRUE(cg.adjacent(4, 0));
}

TEST(ConflictGraphTest, Figure1IsComplete) {
  for (std::size_t k : {2u, 4u, 6u}) {
    const auto inst = wdag::gen::figure1_pathological(k);
    const ConflictGraph cg(inst.family);
    ASSERT_EQ(cg.size(), k);
    EXPECT_EQ(cg.num_edges(), k * (k - 1) / 2) << "k=" << k;
  }
}

TEST(ConflictGraphTest, ExplicitEdgeListConstructor) {
  const ConflictGraph cg(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(cg.adjacent(0, 1));
  EXPECT_TRUE(cg.adjacent(3, 2));
  EXPECT_FALSE(cg.adjacent(1, 2));
  EXPECT_EQ(cg.num_edges(), 2u);
}

TEST(ConflictGraphTest, ExplicitEdgeListValidation) {
  EXPECT_THROW(ConflictGraph(2, {{0, 2}}), wdag::InvalidArgument);
  EXPECT_THROW(ConflictGraph(2, {{1, 1}}), wdag::InvalidArgument);
}

TEST(ConflictGraphTest, NeighborsBitset) {
  const ConflictGraph cg(5, {{0, 1}, {0, 2}, {0, 4}});
  const auto idx = cg.neighbors(0).to_indices();
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 2, 4}));
}

}  // namespace
