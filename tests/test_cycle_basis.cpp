// Unit tests for the internal-cycle basis.

#include <gtest/gtest.h>

#include "dag/cycle_basis.hpp"
#include "dag/internal_cycle.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "gen/topologies.hpp"
#include "gen/upp_gen.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag::dag;

TEST(CycleBasisTest, EmptyOnCleanGraphs) {
  EXPECT_TRUE(internal_cycle_basis(wdag::test::chain(6)).empty());
  EXPECT_TRUE(internal_cycle_basis(wdag::test::diamond()).empty());
  EXPECT_TRUE(internal_cycle_basis(wdag::test::binary_out_tree(3)).empty());
}

TEST(CycleBasisTest, GuardedDiamondSingleton) {
  const auto basis = internal_cycle_basis(wdag::test::guarded_diamond());
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_TRUE(is_internal_cycle(wdag::test::guarded_diamond(), basis[0]));
}

TEST(CycleBasisTest, SizeMatchesCountEverywhere) {
  wdag::util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = wdag::gen::random_dag(rng, 22, 0.15);
    const auto basis = internal_cycle_basis(g);
    EXPECT_EQ(basis.size(), internal_cycle_count(g));
    for (const auto& c : basis) EXPECT_TRUE(is_internal_cycle(g, c));
  }
}

TEST(CycleBasisTest, MultiCycleGadget) {
  const auto inst =
      wdag::gen::upp_multi_cycle_skeleton(4, wdag::gen::UppCycleParams{2, 1, 1, 1});
  const auto basis = internal_cycle_basis(*inst.graph);
  EXPECT_EQ(basis.size(), 4u);
}

TEST(CycleBasisTest, FatChainBundleCount) {
  // Each of the `stages` bundles of width w contributes w-1 fundamental
  // internal cycles.
  for (std::size_t w : {2u, 3u, 4u}) {
    const auto g = wdag::gen::fat_chain(3, w);
    EXPECT_EQ(internal_cycle_basis(g).size(), 3 * (w - 1)) << "width " << w;
  }
}

TEST(CycleBasisTest, ButterflyRegimeBoundary) {
  // k <= 2: no internal cycle; k == 3: suddenly plenty.
  EXPECT_TRUE(internal_cycle_basis(wdag::gen::butterfly(1)).empty());
  EXPECT_TRUE(internal_cycle_basis(wdag::gen::butterfly(2)).empty());
  EXPECT_FALSE(internal_cycle_basis(wdag::gen::butterfly(3)).empty());
}

TEST(CycleBasisTest, BasisCyclesAreDistinct) {
  const auto g = wdag::gen::fat_chain(2, 3);
  const auto basis = internal_cycle_basis(g);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t j = i + 1; j < basis.size(); ++j) {
      EXPECT_FALSE(basis[i].steps == basis[j].steps);
    }
  }
}

}  // namespace
