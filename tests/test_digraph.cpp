// Unit tests for the Digraph substrate.

#include <gtest/gtest.h>

#include "graph/digraph.hpp"
#include "helpers.hpp"
#include "util/check.hpp"

namespace {

using wdag::graph::Arc;
using wdag::graph::Digraph;
using wdag::graph::DigraphBuilder;
using wdag::graph::kNoArc;

TEST(DigraphBuilderTest, EmptyGraph) {
  const Digraph g = DigraphBuilder().build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(DigraphBuilderTest, PreallocatedVertices) {
  DigraphBuilder b(5);
  EXPECT_EQ(b.num_vertices(), 5u);
  const Digraph g = b.build();
  EXPECT_EQ(g.num_vertices(), 5u);
}

TEST(DigraphBuilderTest, ImplicitVertexCreation) {
  DigraphBuilder b;
  b.add_arc(2, 7);
  const Digraph g = b.build();
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_EQ(g.tail(0), 2u);
  EXPECT_EQ(g.head(0), 7u);
}

TEST(DigraphBuilderTest, SelfLoopRejected) {
  DigraphBuilder b(3);
  EXPECT_THROW(b.add_arc(1, 1), wdag::InvalidArgument);
}

TEST(DigraphBuilderTest, NamedVerticesRoundTrip) {
  DigraphBuilder b;
  const auto u = b.vertex("alpha");
  const auto v = b.vertex("beta");
  EXPECT_EQ(b.vertex("alpha"), u);  // idempotent lookup
  b.add_arc(u, v);
  const Digraph g = b.build();
  EXPECT_EQ(g.vertex_by_name("alpha"), u);
  EXPECT_EQ(g.vertex_by_name("beta"), v);
  EXPECT_FALSE(g.vertex_by_name("gamma").has_value());
  EXPECT_EQ(g.vertex_label(u), "alpha");
}

TEST(DigraphBuilderTest, UnnamedLabelFallsBack) {
  const Digraph g = wdag::test::chain(2);
  EXPECT_EQ(g.vertex_label(0), "v0");
}

TEST(DigraphBuilderTest, NamedArcAddition) {
  DigraphBuilder b;
  b.add_arc("x", "y");
  b.add_arc("y", "z");
  const Digraph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(DigraphTest, AdjacencyLists) {
  const Digraph g = wdag::test::diamond();
  ASSERT_EQ(g.out_degree(0), 2u);
  ASSERT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_EQ(g.in_degree(0), 0u);
  // Out-arcs of 0 are arcs 0 (0->1) and 1 (0->2) in insertion order.
  const auto out = g.out_arcs(0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(g.head(out[0]), 1u);
  EXPECT_EQ(g.head(out[1]), 2u);
}

TEST(DigraphTest, InArcsMatchOutArcs) {
  const Digraph g = wdag::test::diamond();
  std::size_t total_in = 0, total_out = 0;
  for (wdag::graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    total_in += g.in_degree(v);
    total_out += g.out_degree(v);
  }
  EXPECT_EQ(total_in, g.num_arcs());
  EXPECT_EQ(total_out, g.num_arcs());
}

TEST(DigraphTest, FindArc) {
  const Digraph g = wdag::test::diamond();
  EXPECT_NE(g.find_arc(0, 1), kNoArc);
  EXPECT_NE(g.find_arc(2, 3), kNoArc);
  EXPECT_EQ(g.find_arc(1, 0), kNoArc);
  EXPECT_EQ(g.find_arc(0, 3), kNoArc);
}

TEST(DigraphTest, FindArcReturnsSmallestParallel) {
  DigraphBuilder b(2);
  const auto a1 = b.add_arc(0, 1);
  const auto a2 = b.add_arc(0, 1);
  const Digraph g = b.build();
  EXPECT_EQ(g.find_arc(0, 1), std::min(a1, a2));
}

TEST(DigraphTest, ParallelArcsAreDistinct) {
  DigraphBuilder b(2);
  b.add_arc(0, 1);
  b.add_arc(0, 1);
  const Digraph g = b.build();
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(1), 2u);
}

TEST(DigraphTest, BoundsChecking) {
  const Digraph g = wdag::test::chain(3);
  EXPECT_THROW((void)g.arc(99), wdag::InvalidArgument);
  EXPECT_THROW((void)g.out_arcs(3), wdag::InvalidArgument);
  EXPECT_THROW((void)g.in_arcs(3), wdag::InvalidArgument);
  EXPECT_THROW((void)g.vertex_name(3), wdag::InvalidArgument);
}

TEST(DigraphTest, ArcEndpoints) {
  const Digraph g = wdag::test::chain(4);
  for (wdag::graph::ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_EQ(g.tail(a), a);
    EXPECT_EQ(g.head(a), a + 1);
  }
}

}  // namespace
