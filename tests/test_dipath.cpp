// Unit tests for Dipath construction and validation.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "paths/dipath.hpp"
#include "util/check.hpp"

namespace {

using namespace wdag::paths;
using wdag::graph::Digraph;
using wdag::graph::DigraphBuilder;

TEST(DipathTest, ValidChainPath) {
  const Digraph g = wdag::test::chain(4);
  const Dipath p({0, 1, 2});
  EXPECT_TRUE(is_valid_dipath(g, p));
  EXPECT_EQ(path_source(g, p), 0u);
  EXPECT_EQ(path_target(g, p), 3u);
  EXPECT_EQ(p.length(), 3u);
}

TEST(DipathTest, EmptyPathIsInvalid) {
  const Digraph g = wdag::test::chain(3);
  EXPECT_FALSE(is_valid_dipath(g, Dipath{}));
  EXPECT_THROW(path_source(g, Dipath{}), wdag::InvalidArgument);
}

TEST(DipathTest, DisconnectedArcsAreInvalid) {
  const Digraph g = wdag::test::chain(4);
  EXPECT_FALSE(is_valid_dipath(g, Dipath({0, 2})));  // skips arc 1
}

TEST(DipathTest, OutOfRangeArcIsInvalid) {
  const Digraph g = wdag::test::chain(3);
  EXPECT_FALSE(is_valid_dipath(g, Dipath({7})));
}

TEST(DipathTest, RepeatedVertexIsInvalid) {
  // In a DAG repetition cannot happen along real arcs, but the validator
  // must still reject a doubled arc sequence.
  const Digraph g = wdag::test::chain(3);
  EXPECT_FALSE(is_valid_dipath(g, Dipath({0, 0})));
}

TEST(DipathTest, PathVertices) {
  const Digraph g = wdag::test::chain(4);
  const auto vs = path_vertices(g, Dipath({1, 2}));
  EXPECT_EQ(vs, (std::vector<wdag::graph::VertexId>{1, 2, 3}));
}

TEST(DipathTest, ContainsArc) {
  const Dipath p({3, 5, 9});
  EXPECT_TRUE(contains_arc(p, 5));
  EXPECT_FALSE(contains_arc(p, 4));
}

TEST(DipathTest, ConflictIsSharedArc) {
  const Dipath p({0, 1, 2}), q({2, 3}), r({3, 4});
  EXPECT_TRUE(paths_conflict(p, q));
  EXPECT_FALSE(paths_conflict(p, r));
  EXPECT_TRUE(paths_conflict(q, r));
  EXPECT_EQ(shared_arcs(p, q), (std::vector<wdag::graph::ArcId>{2}));
  EXPECT_TRUE(shared_arcs(p, r).empty());
}

TEST(DipathTest, VertexIntersectionIsNotConflict) {
  // Two dipaths meeting only at a vertex do NOT conflict (paper §2:
  // conflicts are arc-sharing).
  const Digraph g = wdag::test::diamond();
  const Dipath via1({g.find_arc(0, 1), g.find_arc(1, 3)});
  const Dipath via2({g.find_arc(0, 2), g.find_arc(2, 3)});
  EXPECT_TRUE(is_valid_dipath(g, via1));
  EXPECT_TRUE(is_valid_dipath(g, via2));
  EXPECT_FALSE(paths_conflict(via1, via2));
}

TEST(DipathTest, DipathThrough) {
  const Digraph g = wdag::test::diamond();
  const Dipath p = dipath_through(g, {0, 1, 3});
  EXPECT_TRUE(is_valid_dipath(g, p));
  EXPECT_EQ(p.length(), 2u);
  EXPECT_THROW(dipath_through(g, {0, 3}), wdag::InvalidArgument);  // no arc
  EXPECT_THROW(dipath_through(g, {0}), wdag::InvalidArgument);     // too short
}

TEST(DipathTest, DipathThroughNames) {
  DigraphBuilder b;
  b.add_arc("x", "y");
  b.add_arc("y", "z");
  const Digraph g = b.build();
  const Dipath p = dipath_through_names(g, {"x", "y", "z"});
  EXPECT_EQ(p.length(), 2u);
  EXPECT_THROW(dipath_through_names(g, {"x", "nope"}), wdag::InvalidArgument);
}

TEST(DipathTest, ToString) {
  const Digraph g = wdag::test::chain(3);
  EXPECT_EQ(path_to_string(g, Dipath({0, 1})), "v0 -> v1 -> v2");
  EXPECT_EQ(path_to_string(g, Dipath{}), "(empty)");
}

}  // namespace
