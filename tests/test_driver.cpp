// core::drive — the fault-tolerant shard driver behind `wdag drive`.
//
// These tests exercise the real subprocess path: they spawn the installed
// wdag CLI (`shard run`) as worker children, so they need the binary's
// path in WDAG_CLI_BIN (the CTest registration passes
// $<TARGET_FILE:wdag_cli>). Without it the suite skips rather than fails:
// the drive-vs-batch byte-identity is also covered end-to-end by the
// drive_fault_injection CMake tests.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "wdag/wdag.hpp"

namespace {

using namespace wdag;

const char* cli_bin() { return std::getenv("WDAG_CLI_BIN"); }

ShardSpec drive_spec(std::size_t count = 24) {
  ShardSpec spec;
  spec.family = "random-upp";
  spec.count = count;
  spec.seed = 909;
  return spec;
}

/// The unsharded reference bytes of `spec` (one in-process engine).
std::string reference_csv(const ShardSpec& spec) {
  Engine engine(EngineOptions{.threads = 2, .solve = {}});
  std::ostringstream os;
  CsvStreamSink sink(os);
  BatchRequest request =
      BatchRequest::generated(spec.family, spec.count, spec.params);
  request.options.seed = spec.seed;
  request.options.keep_entries = false;
  request.sinks = {&sink};
  (void)engine.run_batch(request);
  return os.str();
}

/// A fresh scratch dir under the test tmpdir.
std::string fresh_work_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/wdag_drive_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::DriveOptions base_options(const std::string& work_dir) {
  core::DriveOptions options;
  options.wdag_binary = cli_bin();
  options.work_dir = work_dir;
  options.workers = 2;
  options.backoff_seconds = 0.01;  // keep retry tests fast
  return options;
}

TEST(DriveTest, MergedBytesMatchTheUnshardedRun) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  for (const auto layout :
       {core::ShardLayout::kContiguous, core::ShardLayout::kStriped}) {
    const ShardPlan plan(spec, 3, layout);
    std::ostringstream os;
    const core::DriveReport report = core::drive(
        plan, base_options(fresh_work_dir(
                  std::string("ok_") + std::string(layout_name(layout)))),
        os);
    EXPECT_EQ(os.str(), want) << layout_name(layout);
    ASSERT_EQ(report.shards.size(), 3u);
    std::size_t rows = 0;
    for (const auto& s : report.shards) rows += s.rows;
    EXPECT_EQ(rows, spec.count);
    EXPECT_EQ(report.retries, 0u);
  }
}

TEST(DriveTest, InjectedFailureIsRetriedAndStillByteIdentical) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 4);

  ::setenv("WDAG_DRIVE_FAIL_SHARD", "2", 1);
  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  core::DriveReport report;
  try {
    report = core::drive(plan, base_options(fresh_work_dir("retry")), os,
                         [&](const core::DriveEvent& e) {
                           events.push_back(e);
                         });
  } catch (...) {
    ::unsetenv("WDAG_DRIVE_FAIL_SHARD");
    throw;
  }
  ::unsetenv("WDAG_DRIVE_FAIL_SHARD");

  EXPECT_EQ(os.str(), want);
  EXPECT_GE(report.retries, 1u);
  EXPECT_EQ(report.shards[2].retries, 1u);
  EXPECT_GE(report.shards[2].attempts, 2u);

  bool saw_retry = false, saw_exit = false, saw_done = false;
  for (const auto& e : events) {
    if (e.kind == "retry" && e.shard == 2) saw_retry = true;
    if (e.kind == "exit" && e.shard == 2) {
      saw_exit = true;
      EXPECT_NE(e.exit_code, 0);
    }
    if (e.kind == "done") saw_done = true;
    // Every event renders as one JSON line carrying its kind.
    EXPECT_NE(e.to_json().find("\"ev\":\"" + e.kind + "\""),
              std::string::npos);
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_exit);
  EXPECT_TRUE(saw_done);
}

TEST(DriveTest, ExhaustedRetriesFailTheDriveWithoutPartialOutput) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec(8);
  const ShardPlan plan(spec, 2);
  core::DriveOptions options = base_options(fresh_work_dir("exhaust"));
  options.max_retries = 0;  // first failure is fatal
  // Shard 0 is the FIRST flushed shard of a contiguous plan: if the
  // stream leaked anything before the failure it would show here.
  ::setenv("WDAG_DRIVE_FAIL_SHARD", "0", 1);
  std::ostringstream os;
  EXPECT_THROW((void)core::drive(plan, options, os), wdag::InternalError);
  ::unsetenv("WDAG_DRIVE_FAIL_SHARD");
  EXPECT_TRUE(os.str().empty()) << "partial merge leaked: " << os.str();
}

TEST(DriveTest, StragglerIsSpeculatedAndOutputStaysByteIdentical) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 4);
  core::DriveOptions options = base_options(fresh_work_dir("spec"));
  options.workers = 5;  // leave a slot free for the speculative attempt
  options.speculate_factor = 3.0;
  options.speculate_min_completed = 2;

  ::setenv("WDAG_DRIVE_SLOW_SHARD", "1:1500", 1);
  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  core::DriveReport report;
  try {
    report = core::drive(plan, options, os, [&](const core::DriveEvent& e) {
      events.push_back(e);
    });
  } catch (...) {
    ::unsetenv("WDAG_DRIVE_SLOW_SHARD");
    throw;
  }
  ::unsetenv("WDAG_DRIVE_SLOW_SHARD");

  EXPECT_EQ(os.str(), want);
  EXPECT_GE(report.speculations, 1u);
  EXPECT_TRUE(report.shards[1].speculated);
  bool saw_speculate = false;
  for (const auto& e : events) {
    if (e.kind == "speculate" && e.shard == 1) saw_speculate = true;
  }
  EXPECT_TRUE(saw_speculate);
}

TEST(DriveTest, TimeoutKillsAndRetries) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec(12);
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 2);
  core::DriveOptions options = base_options(fresh_work_dir("timeout"));
  options.timeout_seconds = 0.5;
  // Attempt 0 of shard 1 sleeps past the timeout; the retry runs clean
  // (the hook is forwarded only to the first attempt).
  ::setenv("WDAG_DRIVE_SLOW_SHARD", "1:5000", 1);
  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  core::DriveReport report;
  try {
    report = core::drive(plan, options, os, [&](const core::DriveEvent& e) {
      events.push_back(e);
    });
  } catch (...) {
    ::unsetenv("WDAG_DRIVE_SLOW_SHARD");
    throw;
  }
  ::unsetenv("WDAG_DRIVE_SLOW_SHARD");

  EXPECT_EQ(os.str(), want);
  EXPECT_GE(report.shards[1].retries, 1u);
  bool saw_timeout = false;
  for (const auto& e : events) {
    if (e.kind == "timeout" && e.shard == 1) saw_timeout = true;
  }
  EXPECT_TRUE(saw_timeout);
}

TEST(DriveTest, ValidatesItsOptions) {
  const ShardPlan plan(drive_spec(), 2);
  std::ostringstream os;
  core::DriveOptions no_binary;
  no_binary.work_dir = testing::TempDir();
  EXPECT_THROW((void)core::drive(plan, no_binary, os),
               wdag::InvalidArgument);
  core::DriveOptions no_dir;
  no_dir.wdag_binary = "/bin/true";
  EXPECT_THROW((void)core::drive(plan, no_dir, os), wdag::InvalidArgument);
}

TEST(DriveReportTest, ProgressTableHasOneRowPerShard) {
  core::DriveReport report;
  report.shards = {{0, 1, 0, false, 0.5, 12}, {1, 3, 2, true, 1.5, 12}};
  report.retries = 2;
  report.speculations = 1;
  const util::Table t = report.progress_table();
  EXPECT_EQ(t.rows(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("shard"), std::string::npos);
}

}  // namespace
