// core::drive — the fault-tolerant shard driver behind `wdag drive`.
//
// These tests exercise the real subprocess path: they spawn the installed
// wdag CLI (`shard run`) as worker children, so they need the binary's
// path in WDAG_CLI_BIN (the CTest registration passes
// $<TARGET_FILE:wdag_cli>). Without it the suite skips rather than fails:
// the drive-vs-batch byte-identity is also covered end-to-end by the
// drive_fault_injection CMake tests.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "wdag/wdag.hpp"

namespace {

using namespace wdag;

const char* cli_bin() { return std::getenv("WDAG_CLI_BIN"); }

ShardSpec drive_spec(std::size_t count = 24) {
  ShardSpec spec;
  spec.family = "random-upp";
  spec.count = count;
  spec.seed = 909;
  return spec;
}

/// The unsharded reference bytes of `spec` (one in-process engine).
std::string reference_csv(const ShardSpec& spec) {
  Engine engine(EngineOptions{.threads = 2, .solve = {}});
  std::ostringstream os;
  CsvStreamSink sink(os);
  BatchRequest request =
      BatchRequest::generated(spec.family, spec.count, spec.params);
  request.options.seed = spec.seed;
  request.options.keep_entries = false;
  request.sinks = {&sink};
  (void)engine.run_batch(request);
  return os.str();
}

/// A fresh scratch dir under the test tmpdir.
std::string fresh_work_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/wdag_drive_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::DriveOptions base_options(const std::string& work_dir) {
  core::DriveOptions options;
  options.wdag_binary = cli_bin();
  options.work_dir = work_dir;
  options.workers = 2;
  options.backoff_seconds = 0.01;  // keep retry tests fast
  return options;
}

TEST(DriveTest, MergedBytesMatchTheUnshardedRun) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  for (const auto layout :
       {core::ShardLayout::kContiguous, core::ShardLayout::kStriped}) {
    const ShardPlan plan(spec, 3, layout);
    std::ostringstream os;
    const core::DriveReport report = core::drive(
        plan, base_options(fresh_work_dir(
                  std::string("ok_") + std::string(layout_name(layout)))),
        os);
    EXPECT_EQ(os.str(), want) << layout_name(layout);
    ASSERT_EQ(report.shards.size(), 3u);
    std::size_t rows = 0;
    for (const auto& s : report.shards) rows += s.rows;
    EXPECT_EQ(rows, spec.count);
    EXPECT_EQ(report.retries, 0u);
  }
}

TEST(DriveTest, InjectedFailureIsRetriedAndStillByteIdentical) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 4);

  ::setenv("WDAG_DRIVE_FAIL_SHARD", "2", 1);
  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  core::DriveReport report;
  try {
    report = core::drive(plan, base_options(fresh_work_dir("retry")), os,
                         [&](const core::DriveEvent& e) {
                           events.push_back(e);
                         });
  } catch (...) {
    ::unsetenv("WDAG_DRIVE_FAIL_SHARD");
    throw;
  }
  ::unsetenv("WDAG_DRIVE_FAIL_SHARD");

  EXPECT_EQ(os.str(), want);
  EXPECT_GE(report.retries, 1u);
  EXPECT_EQ(report.shards[2].retries, 1u);
  EXPECT_GE(report.shards[2].attempts, 2u);

  bool saw_retry = false, saw_exit = false, saw_done = false;
  for (const auto& e : events) {
    if (e.kind == "retry" && e.shard == 2) saw_retry = true;
    if (e.kind == "exit" && e.shard == 2) {
      saw_exit = true;
      EXPECT_NE(e.exit_code, 0);
    }
    if (e.kind == "done") saw_done = true;
    // Every event renders as one JSON line carrying its kind.
    EXPECT_NE(e.to_json().find("\"ev\":\"" + e.kind + "\""),
              std::string::npos);
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_exit);
  EXPECT_TRUE(saw_done);
}

TEST(DriveTest, ExhaustedRetriesFailTheDriveWithoutPartialOutput) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec(8);
  const ShardPlan plan(spec, 2);
  core::DriveOptions options = base_options(fresh_work_dir("exhaust"));
  options.max_retries = 0;  // first failure is fatal
  // Shard 0 is the FIRST flushed shard of a contiguous plan: if the
  // stream leaked anything before the failure it would show here.
  ::setenv("WDAG_DRIVE_FAIL_SHARD", "0", 1);
  std::ostringstream os;
  EXPECT_THROW((void)core::drive(plan, options, os), wdag::InternalError);
  ::unsetenv("WDAG_DRIVE_FAIL_SHARD");
  EXPECT_TRUE(os.str().empty()) << "partial merge leaked: " << os.str();
}

TEST(DriveTest, StragglerIsSpeculatedAndOutputStaysByteIdentical) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 4);
  core::DriveOptions options = base_options(fresh_work_dir("spec"));
  options.workers = 5;  // leave a slot free for the speculative attempt
  options.speculate_factor = 3.0;
  options.speculate_min_completed = 2;

  ::setenv("WDAG_DRIVE_SLOW_SHARD", "1:1500", 1);
  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  core::DriveReport report;
  try {
    report = core::drive(plan, options, os, [&](const core::DriveEvent& e) {
      events.push_back(e);
    });
  } catch (...) {
    ::unsetenv("WDAG_DRIVE_SLOW_SHARD");
    throw;
  }
  ::unsetenv("WDAG_DRIVE_SLOW_SHARD");

  EXPECT_EQ(os.str(), want);
  EXPECT_GE(report.speculations, 1u);
  EXPECT_TRUE(report.shards[1].speculated);
  bool saw_speculate = false;
  for (const auto& e : events) {
    if (e.kind == "speculate" && e.shard == 1) saw_speculate = true;
  }
  EXPECT_TRUE(saw_speculate);
}

TEST(DriveTest, TimeoutKillsAndRetries) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec(12);
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 2);
  core::DriveOptions options = base_options(fresh_work_dir("timeout"));
  options.timeout_seconds = 0.5;
  // Attempt 0 of shard 1 sleeps past the timeout; the retry runs clean
  // (the hook is forwarded only to the first attempt).
  ::setenv("WDAG_DRIVE_SLOW_SHARD", "1:5000", 1);
  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  core::DriveReport report;
  try {
    report = core::drive(plan, options, os, [&](const core::DriveEvent& e) {
      events.push_back(e);
    });
  } catch (...) {
    ::unsetenv("WDAG_DRIVE_SLOW_SHARD");
    throw;
  }
  ::unsetenv("WDAG_DRIVE_SLOW_SHARD");

  EXPECT_EQ(os.str(), want);
  EXPECT_GE(report.shards[1].retries, 1u);
  bool saw_timeout = false;
  for (const auto& e : events) {
    if (e.kind == "timeout" && e.shard == 1) saw_timeout = true;
  }
  EXPECT_TRUE(saw_timeout);
}

TEST(DriveTest, ValidatesItsOptions) {
  const ShardPlan plan(drive_spec(), 2);
  std::ostringstream os;
  core::DriveOptions no_binary;
  no_binary.work_dir = testing::TempDir();
  EXPECT_THROW((void)core::drive(plan, no_binary, os),
               wdag::InvalidArgument);
  core::DriveOptions no_dir;
  no_dir.wdag_binary = "/bin/true";
  EXPECT_THROW((void)core::drive(plan, no_dir, os), wdag::InvalidArgument);
}

TEST(DriveReportTest, ProgressTableHasOneRowPerShard) {
  core::DriveReport report;
  report.shards = {{0, 1, 0, false, false, 0.5, 12, "local"},
                   {1, 3, 2, true, true, 1.5, 12, "journal"}};
  report.retries = 2;
  report.speculations = 1;
  const util::Table t = report.progress_table();
  EXPECT_EQ(t.rows(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("shard"), std::string::npos);
  EXPECT_NE(text.find("resumed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Crash safety: atomic commit, durable journal, resume, quarantine.
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Runs a keep-outputs drive of `plan` into `dir`, leaving committed
/// shard files + journal behind for a resume test.
std::string seed_completed_drive(const ShardPlan& plan,
                                 const std::string& dir) {
  core::DriveOptions options = base_options(dir);
  options.keep_outputs = true;
  std::ostringstream os;
  (void)core::drive(plan, options, os);
  return os.str();
}

TEST(DriveResumeTest, CommittedOutputsAreAtomicallyNamed) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const ShardPlan plan(spec, 3);
  const std::string dir = fresh_work_dir("atomic");
  (void)seed_completed_drive(plan, dir);

  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/shard." + std::to_string(s) +
                                        ".csv"));
  }
  EXPECT_TRUE(std::filesystem::exists(
      dir + "/" + std::string(core::kDriveJournalFile)));
  // Every attempt wrote to a *.tmp path and was renamed on commit: a
  // successful keep-outputs drive leaves no torn intermediates behind.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp")
        << "uncommitted attempt file leaked: " << entry.path();
  }
}

TEST(DriveResumeTest, ResumeSkipsJournaledShardsAndKeepsBytes) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 3);
  const std::string dir = fresh_work_dir("resume");
  ASSERT_EQ(seed_completed_drive(plan, dir), want);

  core::DriveOptions options = base_options(dir);
  options.resume = true;
  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  const core::DriveReport report =
      core::drive(plan, options, os,
                  [&](const core::DriveEvent& e) { events.push_back(e); });

  EXPECT_EQ(os.str(), want);
  EXPECT_EQ(report.resumed, 3u);
  for (const auto& s : report.shards) EXPECT_TRUE(s.resumed);
  std::size_t resumes = 0, dispatches = 0;
  for (const auto& e : events) {
    if (e.kind == "resume") ++resumes;
    if (e.kind == "dispatch" || e.kind == "speculate") ++dispatches;
  }
  EXPECT_EQ(resumes, 3u);
  EXPECT_EQ(dispatches, 0u) << "a journaled shard was re-executed";
}

TEST(DriveResumeTest, JournalFromADifferentPlanIsRejected) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardPlan plan(drive_spec(), 3);
  const std::string dir = fresh_work_dir("foreign");
  (void)seed_completed_drive(plan, dir);

  ShardSpec other = drive_spec();
  other.seed = 910;  // different request -> different plan id
  const ShardPlan other_plan(other, 3);
  core::DriveOptions options = base_options(dir);
  options.resume = true;
  std::ostringstream os;
  EXPECT_THROW((void)core::drive(other_plan, options, os),
               wdag::InvalidArgument);
  EXPECT_TRUE(os.str().empty());
}

TEST(DriveResumeTest, CorruptedShardOutputIsRerunNotTrusted) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 3);
  const std::string dir = fresh_work_dir("corrupt");
  ASSERT_EQ(seed_completed_drive(plan, dir), want);

  // Truncate shard 1's committed file: its journal entry still claims
  // completion, but the entry is a hint — re-validation must fail and
  // the shard must re-run.
  const std::string victim = dir + "/shard.1.csv";
  const std::string full = slurp(victim);
  ASSERT_FALSE(full.empty());
  std::ofstream(victim, std::ios::trunc) << full.substr(0, full.size() / 2);

  core::DriveOptions options = base_options(dir);
  options.resume = true;
  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  const core::DriveReport report =
      core::drive(plan, options, os,
                  [&](const core::DriveEvent& e) { events.push_back(e); });

  EXPECT_EQ(os.str(), want);
  EXPECT_EQ(report.resumed, 2u);
  EXPECT_FALSE(report.shards[1].resumed);
  bool skipped = false, redispatched = false;
  for (const auto& e : events) {
    if (e.kind == "resume-skip" && e.shard == 1) skipped = true;
    if (e.kind == "dispatch" && e.shard == 1) redispatched = true;
  }
  EXPECT_TRUE(skipped);
  EXPECT_TRUE(redispatched);
}

TEST(DriveResumeTest, ResumeOnEmptyWorkDirIsAFreshStart) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 3);
  core::DriveOptions options = base_options(fresh_work_dir("fresh"));
  options.resume = true;  // nothing to resume: must behave like a fresh run
  std::ostringstream os;
  const core::DriveReport report = core::drive(plan, options, os);
  EXPECT_EQ(os.str(), want);
  EXPECT_EQ(report.resumed, 0u);
}

TEST(DriveResumeTest, HeaderOnlyJournalResumesNothing) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 3);
  const std::string dir = fresh_work_dir("headeronly");
  (void)seed_completed_drive(plan, dir);

  // Zero completed shards journaled == a fresh drive.
  const std::string journal =
      dir + "/" + std::string(core::kDriveJournalFile);
  const std::string contents = slurp(journal);
  const std::size_t first_line = contents.find('\n');
  ASSERT_NE(first_line, std::string::npos);
  std::ofstream(journal, std::ios::trunc)
      << contents.substr(0, first_line + 1);

  core::DriveOptions options = base_options(dir);
  options.resume = true;
  std::ostringstream os;
  const core::DriveReport report = core::drive(plan, options, os);
  EXPECT_EQ(os.str(), want);
  EXPECT_EQ(report.resumed, 0u);
}

TEST(DriveQuarantineTest, SystemicFailuresFailFast) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec(16);
  const ShardPlan plan(spec, 4);
  core::DriveOptions options = base_options(fresh_work_dir("sick"));
  // Every worker "succeeds" without writing output — validation fails on
  // every shard, which is systemic, so fail_fast must abort long before
  // 4 shards x (10+1) attempts burn down.
  options.wdag_binary = "/bin/true";
  options.max_retries = 10;
  options.fail_fast = 5;
  options.backoff_seconds = 0.0;

  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  std::string message;
  try {
    (void)core::drive(plan, options, os,
                      [&](const core::DriveEvent& e) { events.push_back(e); });
    FAIL() << "a drive that can never validate output must throw";
  } catch (const wdag::InternalError& e) {
    message = e.what();
  }
  EXPECT_NE(message.find("systemic"), std::string::npos) << message;

  std::size_t failures = 0;
  bool quarantined = false;
  for (const auto& e : events) {
    if (e.kind == "exit") ++failures;
    if (e.kind == "quarantine") quarantined = true;
  }
  EXPECT_TRUE(quarantined);
  EXPECT_LT(failures, 4u * 11u)
      << "fail-fast did not cut the retry burn-down short";
  EXPECT_TRUE(os.str().empty());
}

TEST(DriveQuarantineTest, SingleShardFailuresStayWithTheRetryBudget) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 4);
  core::DriveOptions options = base_options(fresh_work_dir("local"));
  options.fail_fast = 1;  // would trip instantly if same-shard runs counted

  ::setenv("WDAG_DRIVE_FAIL_SHARD", "2", 1);
  std::ostringstream os;
  core::DriveReport report;
  try {
    report = core::drive(plan, options, os);
  } catch (...) {
    ::unsetenv("WDAG_DRIVE_FAIL_SHARD");
    throw;
  }
  ::unsetenv("WDAG_DRIVE_FAIL_SHARD");

  EXPECT_EQ(os.str(), want);
  EXPECT_GE(report.shards[2].retries, 1u);
}

TEST(DriveInterruptTest, InterruptedDriveIsResumable) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  const ShardSpec spec = drive_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 3);
  const std::string dir = fresh_work_dir("interrupt");

  // workers=1 serializes completions; SIGINT lands right after the first
  // one, so at least one shard is journaled and at least one is not.
  core::DriveOptions options = base_options(dir);
  options.workers = 1;
  std::ostringstream os1;
  bool raised = false;
  bool interrupted = false;
  try {
    (void)core::drive(plan, options, os1, [&](const core::DriveEvent& e) {
      if (e.kind == "complete" && !raised) {
        raised = true;
        std::raise(SIGINT);
      }
    });
  } catch (const core::DriveInterrupted& e) {
    interrupted = true;
    EXPECT_EQ(e.signal(), SIGINT);
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos);
  }
  ASSERT_TRUE(interrupted);
  EXPECT_TRUE(std::filesystem::exists(
      dir + "/" + std::string(core::kDriveJournalFile)));

  core::DriveOptions resume = base_options(dir);
  resume.resume = true;
  std::ostringstream os2;
  const core::DriveReport report = core::drive(plan, resume, os2);
  EXPECT_EQ(os2.str(), want);
  EXPECT_GE(report.resumed, 1u);
  EXPECT_LT(report.resumed, 3u);
}

}  // namespace
