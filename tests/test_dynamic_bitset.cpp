// Unit tests for DynamicBitset.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/dynamic_bitset.hpp"

namespace {

using wdag::util::DynamicBitset;

TEST(DynamicBitsetTest, StartsClear) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitsetTest, SetResetTest) {
  DynamicBitset b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitsetTest, OutOfRangeThrows) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), wdag::InvalidArgument);
  EXPECT_THROW((void)b.test(10), wdag::InvalidArgument);
  EXPECT_THROW(b.reset(10), wdag::InvalidArgument);
}

TEST(DynamicBitsetTest, SetAllRespectsTail) {
  DynamicBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
  b.clear_all();
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitsetTest, FindFirstAndNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(5);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next(5), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), 200u);
}

TEST(DynamicBitsetTest, IterationMatchesToIndices) {
  DynamicBitset b(150);
  const std::vector<std::size_t> want = {0, 1, 63, 64, 65, 127, 128, 149};
  for (auto i : want) b.set(i);
  EXPECT_EQ(b.to_indices(), want);
  std::vector<std::size_t> got;
  for (std::size_t i = b.find_first(); i < b.size(); i = b.find_next(i)) {
    got.push_back(i);
  }
  EXPECT_EQ(got, want);
}

TEST(DynamicBitsetTest, Intersects) {
  DynamicBitset a(100), b(100);
  a.set(3);
  b.set(4);
  EXPECT_FALSE(a.intersects(b));
  b.set(3);
  EXPECT_TRUE(a.intersects(b));
}

TEST(DynamicBitsetTest, OrAndAndNot) {
  DynamicBitset a(80), b(80);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(2);
  DynamicBitset c = a;
  c |= b;
  EXPECT_EQ(c.count(), 3u);
  DynamicBitset d = a;
  d &= b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(70));
  DynamicBitset e = a;
  e.and_not(b);
  EXPECT_EQ(e.count(), 1u);
  EXPECT_TRUE(e.test(1));
}

TEST(DynamicBitsetTest, SizeMismatchThrows) {
  DynamicBitset a(10), b(20);
  EXPECT_THROW(a |= b, wdag::InvalidArgument);
  EXPECT_THROW(a &= b, wdag::InvalidArgument);
  EXPECT_THROW(a.and_not(b), wdag::InvalidArgument);
}

TEST(DynamicBitsetTest, EqualityComparesContent) {
  DynamicBitset a(64), b(64);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

TEST(DynamicBitsetTest, EmptyBitset) {
  DynamicBitset b(0);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.find_first(), 0u);
}

}  // namespace
