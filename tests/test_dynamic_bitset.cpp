// Unit tests for DynamicBitset.

#include <gtest/gtest.h>

#include <limits>

#include "util/check.hpp"
#include "util/dynamic_bitset.hpp"

namespace {

using wdag::util::DynamicBitset;

TEST(DynamicBitsetTest, StartsClear) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitsetTest, SetResetTest) {
  DynamicBitset b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitsetTest, OutOfRangeThrows) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), wdag::InvalidArgument);
  EXPECT_THROW((void)b.test(10), wdag::InvalidArgument);
  EXPECT_THROW(b.reset(10), wdag::InvalidArgument);
}

TEST(DynamicBitsetTest, SetAllRespectsTail) {
  DynamicBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
  b.clear_all();
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitsetTest, FindFirstAndNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(5);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next(5), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), 200u);
}

TEST(DynamicBitsetTest, IterationMatchesToIndices) {
  DynamicBitset b(150);
  const std::vector<std::size_t> want = {0, 1, 63, 64, 65, 127, 128, 149};
  for (auto i : want) b.set(i);
  EXPECT_EQ(b.to_indices(), want);
  std::vector<std::size_t> got;
  for (std::size_t i = b.find_first(); i < b.size(); i = b.find_next(i)) {
    got.push_back(i);
  }
  EXPECT_EQ(got, want);
}

TEST(DynamicBitsetTest, Intersects) {
  DynamicBitset a(100), b(100);
  a.set(3);
  b.set(4);
  EXPECT_FALSE(a.intersects(b));
  b.set(3);
  EXPECT_TRUE(a.intersects(b));
}

TEST(DynamicBitsetTest, OrAndAndNot) {
  DynamicBitset a(80), b(80);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(2);
  DynamicBitset c = a;
  c |= b;
  EXPECT_EQ(c.count(), 3u);
  DynamicBitset d = a;
  d &= b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(70));
  DynamicBitset e = a;
  e.and_not(b);
  EXPECT_EQ(e.count(), 1u);
  EXPECT_TRUE(e.test(1));
}

TEST(DynamicBitsetTest, SizeMismatchThrows) {
  DynamicBitset a(10), b(20);
  EXPECT_THROW(a |= b, wdag::InvalidArgument);
  EXPECT_THROW(a &= b, wdag::InvalidArgument);
  EXPECT_THROW(a.and_not(b), wdag::InvalidArgument);
}

TEST(DynamicBitsetTest, EqualityComparesContent) {
  DynamicBitset a(64), b(64);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

TEST(DynamicBitsetTest, EmptyBitset) {
  DynamicBitset b(0);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.find_first(), 0u);
  EXPECT_EQ(b.find_first_zero(), 0u);
  EXPECT_EQ(b.find_next_zero(0), 0u);
}

TEST(DynamicBitsetTest, FindFirstZeroBasics) {
  DynamicBitset b(130);
  EXPECT_EQ(b.find_first_zero(), 0u);
  b.set(0);
  EXPECT_EQ(b.find_first_zero(), 1u);
  for (std::size_t i = 0; i < 65; ++i) b.set(i);
  EXPECT_EQ(b.find_first_zero(), 65u);  // crosses the first word boundary
}

TEST(DynamicBitsetTest, FindFirstZeroAllOnes) {
  // All bits one: no zero before size(), and the zero tail bits of the
  // last word must not be reported.
  for (const std::size_t n : {1u, 63u, 64u, 65u, 128u, 130u}) {
    DynamicBitset b(n);
    b.set_all();
    EXPECT_EQ(b.find_first_zero(), n) << "n=" << n;
    EXPECT_EQ(b.find_next_zero(0), n) << "n=" << n;
  }
}

TEST(DynamicBitsetTest, FindNextZeroWalksHoles) {
  DynamicBitset b(200);
  b.set_all();
  b.reset(5);
  b.reset(64);
  b.reset(199);
  EXPECT_EQ(b.find_first_zero(), 5u);
  EXPECT_EQ(b.find_next_zero(5), 64u);
  EXPECT_EQ(b.find_next_zero(64), 199u);
  EXPECT_EQ(b.find_next_zero(199), 200u);
}

TEST(DynamicBitsetTest, FindNextZeroAtWordEdges) {
  DynamicBitset b(129);
  b.set_all();
  b.reset(63);
  b.reset(128);
  EXPECT_EQ(b.find_next_zero(62), 63u);
  EXPECT_EQ(b.find_next_zero(63), 128u);
  EXPECT_EQ(b.find_next_zero(128), 129u);
}

TEST(DynamicBitsetTest, ZeroScanMatchesLinearScan) {
  DynamicBitset b(193);
  for (std::size_t i = 0; i < 193; i += 3) b.set(i);
  std::vector<std::size_t> linear;
  for (std::size_t i = 0; i < 193; ++i) {
    if (!b.test(i)) linear.push_back(i);
  }
  std::vector<std::size_t> scanned;
  for (std::size_t i = b.find_first_zero(); i < b.size();
       i = b.find_next_zero(i)) {
    scanned.push_back(i);
  }
  EXPECT_EQ(scanned, linear);
}

TEST(DynamicBitsetTest, OrIntoLargerTarget) {
  DynamicBitset src(70), dst(140);
  src.set(1);
  src.set(69);
  dst.set(100);
  src.or_into(dst);
  EXPECT_TRUE(dst.test(1));
  EXPECT_TRUE(dst.test(69));
  EXPECT_TRUE(dst.test(100));
  EXPECT_EQ(dst.count(), 3u);
  DynamicBitset small(10);
  EXPECT_THROW(dst.or_into(small), wdag::InvalidArgument);
}

TEST(DynamicBitsetTest, ResetToZeroReusesStorage) {
  DynamicBitset b(128);
  b.set_all();
  b.reset_to_zero(70);  // shrink: all clear at the new size
  EXPECT_EQ(b.size(), 70u);
  EXPECT_TRUE(b.none());
  b.set(69);
  b.reset_to_zero(300);  // grow: still all clear
  EXPECT_EQ(b.size(), 300u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.find_first_zero(), 0u);
}

// Regression: find_next/find_next_zero with a start index at or past
// size() must return size() for ANY start value. The old implementations
// incremented before the range check, so i == SIZE_MAX wrapped to 0 and
// silently restarted the scan from the front — find_next_zero(SIZE_MAX)
// on an empty mask returned 0, not size().
TEST(DynamicBitsetTest, FindNextPastEndNeverWrapsAround) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{64},
                              std::size_t{130}}) {
    DynamicBitset zeros(n);
    DynamicBitset ones(n);
    ones.set_all();
    for (const std::size_t start : {n, n + 1, kMax - 1, kMax}) {
      EXPECT_EQ(zeros.find_next(start), n) << "n=" << n << " start=" << start;
      EXPECT_EQ(zeros.find_next_zero(start), n)
          << "n=" << n << " start=" << start;
      EXPECT_EQ(ones.find_next(start), n) << "n=" << n << " start=" << start;
      EXPECT_EQ(ones.find_next_zero(start), n)
          << "n=" << n << " start=" << start;
    }
  }
}

// Regression: when no zero exists, both zero-scans report size() and
// never surface the zero tail bits past size() in the last word.
TEST(DynamicBitsetTest, NoZeroMeansSizeNotTailBits) {
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{63}, std::size_t{65}, std::size_t{257}}) {
    DynamicBitset b(n);
    b.set_all();  // tail bits beyond n stay zero in the backing word
    EXPECT_EQ(b.find_first_zero(), n) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(b.find_next_zero(i), n) << "n=" << n << " i=" << i;
    }
  }
}

TEST(DynamicBitsetTest, WordAccessors) {
  DynamicBitset b(130);
  EXPECT_EQ(b.num_words(), 3u);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.word(0), std::uint64_t{1});
  EXPECT_EQ(b.word(1), std::uint64_t{1});
  EXPECT_EQ(b.word(2), std::uint64_t{1} << 1);
}

}  // namespace
