// Engine longevity: the serve subsystem keeps ONE api::Engine alive for
// every request it services (warm per-worker arenas, a cost model that
// keeps learning). That is only sound if a long-lived engine's answers
// never drift from a fresh engine's — scratch arenas and the cost model
// must affect SPEED only, never results. This suite drives one warm
// engine through hundreds of sequential mixed solve/batch requests via
// the same serve::service_job path the server's worker uses and pins
// every response to a fresh engine's, field for field.

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "api/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"

namespace wdag {
namespace {

using serve::Job;
using serve::RequestKind;

/// A deterministic mixed request stream: mostly single solves rotating
/// through the workload families (and through forced strategies now and
/// then), with a batch every seventh request so the warm engine's cost
/// model keeps absorbing observations between comparisons.
Job request_at(std::size_t i) {
  Job job;
  if (i % 7 == 3) {
    job.request.kind = RequestKind::kBatch;
    job.request.count = 16;
    job.request.gen.family = (i % 2 == 0) ? "random-upp" : "random-dag";
    job.request.gen.seed = i * 31 + 1;
    return job;
  }
  job.request.kind = RequestKind::kSolve;
  static constexpr const char* kFamilies[] = {"random-upp", "tree",
                                              "random-dag", "grid",
                                              "layered", "no-internal"};
  job.request.gen.family = kFamilies[i % 6];
  job.request.gen.seed = i + 1;
  if (i % 11 == 5) job.request.force = "dsatur";
  return job;
}

/// The response with its trailing timing fields dropped: solve responses
/// end in "millis", batch responses in "wall-seconds" / throughput /
/// latency — everything before those is the deterministic payload.
std::string deterministic_prefix(const std::string& response) {
  for (const std::string_view timing : {"\"millis\"", "\"wall-seconds\""}) {
    const std::size_t pos = response.find(timing);
    if (pos != std::string::npos) return response.substr(0, pos);
  }
  return response;
}

TEST(EngineLongevity, WarmEngineMatchesFreshEngineOverHundredsOfRequests) {
  api::Engine warm(api::EngineOptions{1, {}});
  serve::ServeStats warm_stats;

  constexpr std::size_t kRequests = 240;
  for (std::size_t i = 0; i < kRequests; ++i) {
    Job warm_job = request_at(i);
    const std::string warm_response =
        serve::service_job(warm, warm_job, warm_stats, false);

    // A fresh engine sees exactly this one request, cold.
    api::Engine fresh(api::EngineOptions{1, {}});
    serve::ServeStats fresh_stats;
    Job fresh_job = request_at(i);
    const std::string fresh_response =
        serve::service_job(fresh, fresh_job, fresh_stats, false);

    ASSERT_EQ(deterministic_prefix(warm_response),
              deterministic_prefix(fresh_response))
        << "request " << i << " drifted on the warm engine";
    ASSERT_EQ(serve::parse_reply(warm_response).status, "ok")
        << "request " << i << ": " << warm_response;
  }

  // The stream really exercised both request kinds...
  EXPECT_GT(warm_stats.solved(), 0u);
  EXPECT_GT(warm_stats.batches(), 0u);
  EXPECT_EQ(warm_stats.solved() + warm_stats.batches(), kRequests);
  EXPECT_EQ(warm_stats.errors(), 0u);

  // ...and the warm engine's cost model kept learning across them: its
  // observation-weighted cost estimate moved off the cold priors.
  api::Engine cold(api::EngineOptions{1, {}});
  EXPECT_NE(warm.cost_model().expected_micros(),
            cold.cost_model().expected_micros());
}

}  // namespace
}  // namespace wdag
