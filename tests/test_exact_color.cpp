// Unit tests for the exact chromatic-number solver — the oracle the benches
// use to certify every "w equals ..." claim.

#include <gtest/gtest.h>

#include "conflict/clique.hpp"
#include "conflict/exact_color.hpp"
#include "gen/paper_instances.hpp"
#include "gen/family_gen.hpp"
#include "gen/random_dag.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag::conflict;

ConflictGraph cycle(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return ConflictGraph(n, edges);
}

ConflictGraph complete(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return ConflictGraph(n, edges);
}

TEST(ExactColorTest, EmptyAndEdgeless) {
  EXPECT_EQ(chromatic_number(ConflictGraph(0, {})).chromatic_number, 0u);
  EXPECT_EQ(chromatic_number(ConflictGraph(5, {})).chromatic_number, 1u);
}

TEST(ExactColorTest, OddAndEvenCycles) {
  EXPECT_EQ(chromatic_number(cycle(5)).chromatic_number, 3u);
  EXPECT_EQ(chromatic_number(cycle(6)).chromatic_number, 2u);
  EXPECT_EQ(chromatic_number(cycle(9)).chromatic_number, 3u);
  EXPECT_EQ(chromatic_number(cycle(3)).chromatic_number, 3u);
}

TEST(ExactColorTest, CompleteGraphs) {
  for (std::size_t n : {1u, 2u, 4u, 7u}) {
    EXPECT_EQ(chromatic_number(complete(n)).chromatic_number, n);
  }
}

TEST(ExactColorTest, ReturnsValidOptimalColoring) {
  const auto cg = cycle(7);
  const auto res = chromatic_number(cg);
  EXPECT_TRUE(res.proven);
  EXPECT_TRUE(is_valid_coloring(cg, res.coloring));
  EXPECT_EQ(num_colors(res.coloring), res.chromatic_number);
}

TEST(ExactColorTest, WagnerGraphNeedsThree) {
  // V8 = C8 + antipodal chords — the conflict graph of the Havet instance.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < 8; ++i) edges.emplace_back(i, (i + 1) % 8);
  for (std::size_t i = 0; i < 4; ++i) edges.emplace_back(i, i + 4);
  EXPECT_EQ(chromatic_number(ConflictGraph(8, edges)).chromatic_number, 3u);
}

TEST(ExactColorTest, HavetReplicatedMatchesCeil8hOver3) {
  const auto base = wdag::gen::havet_instance();
  for (std::size_t h = 1; h <= 3; ++h) {
    const auto fam = base.family.replicate(h);
    const auto res = chromatic_number(ConflictGraph(fam));
    ASSERT_TRUE(res.proven);
    EXPECT_EQ(res.chromatic_number, (8 * h + 2) / 3) << "h=" << h;
  }
}

TEST(TryColorWithTest, DecisionBoundary) {
  const auto cg = cycle(5);
  EXPECT_FALSE(try_color_with(cg, 2).has_value());
  const auto col = try_color_with(cg, 3);
  ASSERT_TRUE(col.has_value());
  EXPECT_TRUE(is_valid_coloring(cg, *col));
  EXPECT_LE(num_colors(*col), 3u);
}

TEST(TryColorWithTest, CliqueShortCircuit) {
  EXPECT_FALSE(try_color_with(complete(6), 5).has_value());
}

TEST(TryColorWithTest, EmptyGraph) {
  const auto col = try_color_with(ConflictGraph(0, {}), 0);
  ASSERT_TRUE(col.has_value());
  EXPECT_TRUE(col->empty());
}

TEST(ExactColorTest, AgreesWithCliqueOnPerfectLikeInstances) {
  // Interval-like conflict graphs of dipaths on a chain are perfect:
  // chi == clique.
  wdag::util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = wdag::gen::random_out_tree(rng, 20);
    const auto fam = wdag::gen::random_walk_family(rng, g, 18, 1, 6);
    const ConflictGraph cg(fam);
    const auto res = chromatic_number(cg);
    ASSERT_TRUE(res.proven);
    EXPECT_EQ(res.chromatic_number, clique_number(cg));
  }
}

TEST(ExactColorTest, NeverBelowCliqueNeverAboveDsatur) {
  wdag::util::Xoshiro256 rng(12);
  for (int trial = 0; trial < 8; ++trial) {
    const auto g = wdag::gen::random_layered_dag(rng, 4, 4, 0.5);
    const auto fam = wdag::gen::random_walk_family(rng, g, 20, 1, 5);
    const ConflictGraph cg(fam);
    const auto res = chromatic_number(cg);
    ASSERT_TRUE(res.proven);
    EXPECT_GE(res.chromatic_number, clique_number(cg));
    EXPECT_LE(res.chromatic_number, num_colors(dsatur_coloring(cg)));
  }
}

}  // namespace
