// Unit tests for DipathFamily and load computation.

#include <gtest/gtest.h>

#include "gen/paper_instances.hpp"
#include "helpers.hpp"
#include "paths/family.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"

namespace {

using namespace wdag::paths;
using wdag::graph::Digraph;

TEST(FamilyTest, AddValidatesAgainstHost) {
  const Digraph g = wdag::test::chain(4);
  DipathFamily fam(g);
  EXPECT_EQ(fam.add(Dipath({0, 1})), 0u);
  EXPECT_EQ(fam.add(Dipath({1, 2})), 1u);
  EXPECT_THROW(fam.add(Dipath({0, 2})), wdag::InvalidArgument);
  EXPECT_THROW(fam.add(Dipath{}), wdag::InvalidArgument);
  EXPECT_EQ(fam.size(), 2u);
}

TEST(FamilyTest, MultisetSemantics) {
  const Digraph g = wdag::test::chain(3);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1}));
  fam.add(Dipath({0, 1}));  // identical copy is kept
  EXPECT_EQ(fam.size(), 2u);
  EXPECT_EQ(fam.path(0), fam.path(1));
}

TEST(FamilyTest, DefaultConstructedThrowsOnUse) {
  DipathFamily fam;
  EXPECT_THROW((void)fam.graph(), wdag::InvalidArgument);
  EXPECT_THROW(fam.add(Dipath({0})), wdag::InvalidArgument);
}

TEST(FamilyTest, ReplicateBlocks) {
  const Digraph g = wdag::test::chain(4);
  DipathFamily fam(g);
  fam.add(Dipath({0}));
  fam.add(Dipath({1, 2}));
  const DipathFamily r = fam.replicate(3);
  ASSERT_EQ(r.size(), 6u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(r.path(static_cast<PathId>(c)), fam.path(0));
    EXPECT_EQ(r.path(static_cast<PathId>(3 + c)), fam.path(1));
  }
}

TEST(FamilyTest, FilterKeepsOrder) {
  const Digraph g = wdag::test::chain(5);
  DipathFamily fam(g);
  fam.add(Dipath({0}));
  fam.add(Dipath({1}));
  fam.add(Dipath({2}));
  const auto f = fam.filter({true, false, true});
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f.path(0), fam.path(0));
  EXPECT_EQ(f.path(1), fam.path(2));
  EXPECT_THROW(fam.filter({true}), wdag::InvalidArgument);
}

TEST(LoadTest, ChainLoads) {
  const Digraph g = wdag::test::chain(4);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1}));
  fam.add(Dipath({1, 2}));
  fam.add(Dipath({1}));
  const auto loads = arc_loads(fam);
  EXPECT_EQ(loads, (std::vector<std::size_t>{1, 3, 1}));
  EXPECT_EQ(max_load(fam), 3u);
  EXPECT_EQ(max_load_arc(fam), 1u);
}

TEST(LoadTest, EmptyFamily) {
  const Digraph g = wdag::test::chain(3);
  DipathFamily fam(g);
  EXPECT_EQ(max_load(fam), 0u);
  EXPECT_EQ(max_load_arc(fam), wdag::graph::kNoArc);
}

TEST(LoadTest, ReplicationScalesLoadLinearly) {
  const auto inst = wdag::gen::havet_instance();
  EXPECT_EQ(max_load(inst.family), 2u);
  for (std::size_t h : {2u, 3u, 5u}) {
    EXPECT_EQ(max_load(inst.family.replicate(h)), 2 * h);
  }
}

TEST(LoadTest, RestrictedLoad) {
  const Digraph g = wdag::test::chain(4);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1, 2}));
  fam.add(Dipath({1, 2}));
  const auto r = max_load_on(fam, {0, 2});
  EXPECT_EQ(r.load, 2u);
  EXPECT_EQ(r.arc, 2u);
  const auto none = max_load_on(fam, {});
  EXPECT_EQ(none.load, 0u);
  EXPECT_EQ(none.arc, wdag::graph::kNoArc);
}

TEST(IncidenceTest, MatchesPaths) {
  const Digraph g = wdag::test::chain(4);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1}));
  fam.add(Dipath({1, 2}));
  const auto inc = arc_incidence(fam);
  ASSERT_EQ(inc.size(), 3u);
  EXPECT_EQ(inc[0], (std::vector<PathId>{0}));
  EXPECT_EQ(inc[1], (std::vector<PathId>{0, 1}));
  EXPECT_EQ(inc[2], (std::vector<PathId>{1}));
}

TEST(LoadTest, PaperPiValues) {
  EXPECT_EQ(max_load(wdag::gen::figure3_instance().family), 2u);
  EXPECT_EQ(max_load(wdag::gen::theorem2_instance(4).family), 2u);
  EXPECT_EQ(max_load(wdag::gen::figure1_pathological(6).family), 2u);
}

}  // namespace
