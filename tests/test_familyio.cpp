// Tests for instance serialization.

#include <gtest/gtest.h>

#include "gen/paper_instances.hpp"
#include "paths/familyio.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"

namespace {

using namespace wdag::paths;

TEST(FamilyIoTest, RoundTripFigure3) {
  const auto inst = wdag::gen::figure3_instance();
  const auto text = to_instance_text(inst.family);
  const auto parsed = parse_instance_text(text);
  EXPECT_EQ(parsed.graph->num_vertices(), inst.graph->num_vertices());
  EXPECT_EQ(parsed.graph->num_arcs(), inst.graph->num_arcs());
  ASSERT_EQ(parsed.family.size(), inst.family.size());
  EXPECT_EQ(max_load(parsed.family), max_load(inst.family));
}

TEST(FamilyIoTest, RoundTripPreservesPathLengths) {
  const auto inst = wdag::gen::havet_instance();
  const auto parsed = parse_instance_text(to_instance_text(inst.family));
  ASSERT_EQ(parsed.family.size(), 8u);
  for (PathId i = 0; i < 8; ++i) {
    EXPECT_EQ(parsed.family.path(i).length(), inst.family.path(i).length());
  }
}

TEST(FamilyIoTest, HandWrittenInstance) {
  const auto parsed = parse_instance_text(
      "# tiny instance\n"
      "arc a b\n"
      "arc b c\n"
      "path a b c\n"
      "path b c\n");
  EXPECT_EQ(parsed.graph->num_vertices(), 3u);
  EXPECT_EQ(parsed.family.size(), 2u);
  EXPECT_EQ(max_load(parsed.family), 2u);  // both cross b -> c
}

TEST(FamilyIoTest, RejectsUnknownKeyword) {
  EXPECT_THROW(parse_instance_text("edge a b\n"), wdag::InvalidArgument);
}

TEST(FamilyIoTest, RejectsShortPath) {
  EXPECT_THROW(parse_instance_text("arc a b\npath a\n"),
               wdag::InvalidArgument);
}

TEST(FamilyIoTest, RejectsUnknownPathVertex) {
  EXPECT_THROW(parse_instance_text("arc a b\npath a zzz\n"),
               wdag::InvalidArgument);
}

TEST(FamilyIoTest, RejectsPathWithoutArc) {
  EXPECT_THROW(parse_instance_text("arc a b\narc c d\npath a b c\n"),
               wdag::InvalidArgument);
}

TEST(FamilyIoTest, EmptyTextYieldsEmptyInstance) {
  const auto parsed = parse_instance_text("");
  EXPECT_EQ(parsed.graph->num_vertices(), 0u);
  EXPECT_TRUE(parsed.family.empty());
}

TEST(FamilyIoTest, NumericVertices) {
  const auto parsed = parse_instance_text("arc 0 1\narc 1 2\npath 0 1 2\n");
  EXPECT_EQ(parsed.family.size(), 1u);
  EXPECT_EQ(parsed.family.path(0).length(), 2u);
}

// Regression: an arc or path vertex beyond unsigned long used to escape
// as a bare std::out_of_range from std::stoul instead of the line-numbered
// InvalidArgument every other malformed input gets.
TEST(FamilyIoTest, OversizedVertexIdGetsALineNumberedDiagnostic) {
  const std::string text =
      "arc 0 1\n"
      "arc 1 18446744073709551616\n";  // ULONG_MAX + 1
  try {
    parse_instance_text(text);
    FAIL() << "expected InvalidArgument";
  } catch (const wdag::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

TEST(FamilyIoTest, OversizedPathVertexGetsALineNumberedDiagnostic) {
  const std::string text =
      "arc 0 1\n"
      "path 0 99999999999999999999\n";
  try {
    parse_instance_text(text);
    FAIL() << "expected InvalidArgument";
  } catch (const wdag::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

}  // namespace
