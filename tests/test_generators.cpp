// Tests for the random instance generators.

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "dag/classify.hpp"
#include "dag/internal_cycle.hpp"
#include "dag/upp.hpp"
#include "gen/family_gen.hpp"
#include "gen/random_dag.hpp"
#include "gen/upp_gen.hpp"
#include "graph/topo.hpp"
#include "paths/dipath.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag::gen;
using wdag::util::Xoshiro256;

TEST(RandomDagTest, AlwaysAcyclic) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    EXPECT_TRUE(wdag::graph::is_dag(random_dag(rng, 25, 0.2)));
  }
}

TEST(RandomDagTest, Determinism) {
  Xoshiro256 a(9), b(9);
  const auto g1 = random_dag(a, 20, 0.2);
  const auto g2 = random_dag(b, 20, 0.2);
  ASSERT_EQ(g1.num_arcs(), g2.num_arcs());
  EXPECT_EQ(g1.arcs(), g2.arcs());
}

TEST(RandomLayeredDagTest, ShapeAndAcyclicity) {
  Xoshiro256 rng(2);
  const auto g = random_layered_dag(rng, 5, 4, 0.3);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_TRUE(wdag::graph::is_dag(g));
  // Every non-final-layer vertex has at least one out-arc.
  for (wdag::graph::VertexId v = 0; v < 16; ++v) {
    EXPECT_GE(g.out_degree(v), 1u) << v;
  }
  // Final layer is all sinks.
  for (wdag::graph::VertexId v = 16; v < 20; ++v) {
    EXPECT_EQ(g.out_degree(v), 0u);
  }
}

TEST(RandomTreeTest, OutTreeInvariants) {
  Xoshiro256 rng(3);
  const auto g = random_out_tree(rng, 30);
  EXPECT_EQ(g.num_arcs(), 29u);
  EXPECT_EQ(g.in_degree(0), 0u);
  for (wdag::graph::VertexId v = 1; v < 30; ++v) EXPECT_EQ(g.in_degree(v), 1u);
  EXPECT_TRUE(wdag::dag::is_upp(g));
  EXPECT_FALSE(wdag::dag::has_internal_cycle(g));
}

TEST(RandomTreeTest, InTreeInvariants) {
  Xoshiro256 rng(4);
  const auto g = random_in_tree(rng, 30);
  EXPECT_EQ(g.out_degree(0), 0u);
  for (wdag::graph::VertexId v = 1; v < 30; ++v) EXPECT_EQ(g.out_degree(v), 1u);
  EXPECT_TRUE(wdag::dag::is_upp(g));
}

TEST(NoInternalCycleGenTest, NeverHasInternalCycles) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = random_no_internal_cycle_dag(rng, 25, 0.25);
    EXPECT_TRUE(wdag::graph::is_dag(g));
    EXPECT_FALSE(wdag::dag::has_internal_cycle(g));
  }
}

TEST(UppGenTest, SkeletonClassification) {
  for (std::size_t k : {2u, 3u, 5u}) {
    const auto inst = upp_one_cycle_skeleton(UppCycleParams{k, 2, 2, 2});
    const auto r = wdag::dag::classify(*inst.graph);
    EXPECT_TRUE(r.theorem6_applies()) << "k=" << k;
  }
}

TEST(UppGenTest, ParamValidation) {
  EXPECT_THROW(upp_one_cycle_skeleton(UppCycleParams{1, 1, 1, 1}),
               wdag::InvalidArgument);
  EXPECT_THROW(upp_one_cycle_skeleton(UppCycleParams{2, 0, 1, 1}),
               wdag::InvalidArgument);
}

TEST(UppGenTest, MultiCycleCounts) {
  for (std::size_t c : {1u, 2u, 4u}) {
    const auto inst = upp_multi_cycle_skeleton(c, UppCycleParams{2, 1, 1, 1});
    EXPECT_EQ(wdag::dag::internal_cycle_count(*inst.graph), c);
    EXPECT_TRUE(wdag::dag::is_upp(*inst.graph));
  }
}

TEST(UppGenTest, RandomInstanceFamiliesAreValidRoutes) {
  Xoshiro256 rng(6);
  const auto inst =
      random_upp_one_cycle_instance(rng, UppCycleParams{3, 1, 1, 1}, 30);
  EXPECT_EQ(inst.family.size(), 30u);
  for (const auto& p : inst.family.paths()) {
    EXPECT_TRUE(wdag::paths::is_valid_dipath(*inst.graph, p));
  }
}

TEST(FamilyGenTest, RandomWalksRespectLengthBounds) {
  Xoshiro256 rng(7);
  const auto g = random_layered_dag(rng, 6, 3, 0.5);
  const auto fam = random_walk_family(rng, g, 40, 2, 4);
  EXPECT_EQ(fam.size(), 40u);
  for (const auto& p : fam.paths()) {
    EXPECT_GE(p.length(), 1u);  // min_len is best-effort at sinks
    EXPECT_LE(p.length(), 4u);
    EXPECT_TRUE(wdag::paths::is_valid_dipath(g, p));
  }
}

TEST(FamilyGenTest, AllToAllOnUppSkeleton) {
  const auto inst = upp_one_cycle_skeleton(UppCycleParams{2, 1, 1, 1});
  const auto fam = all_to_all_family(*inst.graph);
  EXPECT_GT(fam.size(), 0u);
  // One dipath per reachable ordered pair; endpoints must be unique pairs.
  std::set<std::pair<unsigned, unsigned>> seen;
  for (const auto& p : fam.paths()) {
    const auto key = std::make_pair(
        wdag::paths::path_source(*inst.graph, p),
        wdag::paths::path_target(*inst.graph, p));
    EXPECT_TRUE(seen.insert(key).second);
  }
}

TEST(FamilyGenTest, MulticastFromRoot) {
  Xoshiro256 rng(8);
  const auto g = random_out_tree(rng, 25);
  const auto fam = multicast_family(g, 0);
  EXPECT_EQ(fam.size(), 24u);  // root reaches everyone in an out-tree
  for (const auto& p : fam.paths()) {
    EXPECT_EQ(wdag::paths::path_source(g, p), 0u);
  }
}

TEST(FamilyGenTest, RandomRequestsAreRoutable) {
  Xoshiro256 rng(9);
  const auto g = random_layered_dag(rng, 4, 4, 0.4);
  const auto fam = random_request_family(rng, g, 25);
  EXPECT_EQ(fam.size(), 25u);
}

TEST(FamilyGenTest, InputValidation) {
  Xoshiro256 rng(10);
  const auto g = wdag::graph::DigraphBuilder(3).build();  // no arcs
  EXPECT_THROW(random_walk_family(rng, g, 5, 1, 3), wdag::InvalidArgument);
  EXPECT_THROW(random_request_family(rng, g, 5), wdag::InvalidArgument);
}

}  // namespace
