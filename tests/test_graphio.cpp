// Unit tests for graph serialization.

#include <gtest/gtest.h>

#include "graph/graphio.hpp"
#include "helpers.hpp"
#include "util/check.hpp"

namespace {

using namespace wdag::graph;

TEST(GraphIoTest, EdgeListRoundTripNumeric) {
  const Digraph g = wdag::test::diamond();
  const Digraph h = parse_edge_list(to_edge_list(g));
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_arcs(), g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    // Labels of unnamed vertices are "v<i>", parsed back as names; compare
    // structurally via labels.
    EXPECT_EQ(h.vertex_label(h.tail(a)), g.vertex_label(g.tail(a)));
    EXPECT_EQ(h.vertex_label(h.head(a)), g.vertex_label(g.head(a)));
  }
}

TEST(GraphIoTest, ParseNumericIds) {
  const Digraph g = parse_edge_list("0 1\n1 2\n0 2\n");
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_NE(g.find_arc(0, 2), kNoArc);
}

TEST(GraphIoTest, ParseNames) {
  const Digraph g = parse_edge_list("alpha beta\nbeta gamma\n");
  EXPECT_EQ(g.num_vertices(), 3u);
  ASSERT_TRUE(g.vertex_by_name("beta").has_value());
  EXPECT_EQ(g.out_degree(*g.vertex_by_name("beta")), 1u);
}

TEST(GraphIoTest, ParseSkipsCommentsAndBlanks) {
  const Digraph g = parse_edge_list("# header\n\n0 1\n# mid\n1 2  # trailing\n");
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(GraphIoTest, ParseRejectsDanglingTail) {
  EXPECT_THROW(parse_edge_list("0\n"), wdag::InvalidArgument);
}

TEST(GraphIoTest, ParseRejectsExtraTokens) {
  EXPECT_THROW(parse_edge_list("0 1 2\n"), wdag::InvalidArgument);
}

TEST(GraphIoTest, DotContainsAllArcsAndShapes) {
  const Digraph g = wdag::test::chain(3);
  const std::string dot = to_dot(g, "Chain");
  EXPECT_NE(dot.find("digraph Chain"), std::string::npos);
  EXPECT_NE(dot.find("\"v0\" -> \"v1\""), std::string::npos);
  EXPECT_NE(dot.find("\"v1\" -> \"v2\""), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);           // source
  EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos);  // sink
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);        // internal
}

TEST(GraphIoTest, EmptyTextYieldsEmptyGraph) {
  const Digraph g = parse_edge_list("");
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

// Regression: numeric ids beyond unsigned long used to escape as a bare
// std::out_of_range from std::stoul with no hint of the offending line.
TEST(GraphIoTest, OversizedVertexIdGetsALineNumberedDiagnostic) {
  const std::string text = "0 1\n1 99999999999999999999999999\n";
  try {
    parse_edge_list(text);
    FAIL() << "expected InvalidArgument";
  } catch (const wdag::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

// Ids that fit unsigned long but exceed the VertexId budget get the same
// line-numbered treatment instead of a silent narrowing cast.
TEST(GraphIoTest, TooLargeVertexIdGetsALineNumberedDiagnostic) {
  try {
    parse_edge_list("0 4294967295\n");
    FAIL() << "expected InvalidArgument";
  } catch (const wdag::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("too large"), std::string::npos) << what;
  }
}

}  // namespace
