// Unit tests for Property 3 (Helly), Lemma 4 and Corollary 5 consequences.

#include <gtest/gtest.h>

#include "conflict/clique.hpp"
#include "conflict/helly.hpp"
#include "gen/family_gen.hpp"
#include "gen/paper_instances.hpp"
#include "gen/upp_gen.hpp"
#include "helpers.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag::conflict;
using wdag::paths::Dipath;
using wdag::paths::DipathFamily;

TEST(ConflictIntervalTest, SharedSubpath) {
  const auto g = wdag::test::chain(6);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1, 2, 3}));
  fam.add(Dipath({2, 3, 4}));
  const auto inter = conflict_interval(fam, 0, 1);
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(inter->arcs, (std::vector<wdag::graph::ArcId>{2, 3}));
}

TEST(ConflictIntervalTest, DisjointPathsGiveNullopt) {
  const auto g = wdag::test::chain(6);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1}));
  fam.add(Dipath({3, 4}));
  EXPECT_FALSE(conflict_interval(fam, 0, 1).has_value());
}

TEST(ConflictIntervalTest, NonContiguousIntersectionThrows) {
  // Host graph deliberately violates UPP: P and Q share arcs 0 and 3 but
  // run through different middles (parallel arcs).
  wdag::graph::DigraphBuilder b(5);
  const auto e0 = b.add_arc(0, 1);
  const auto mid1 = b.add_arc(1, 2);
  const auto mid2 = b.add_arc(1, 2);  // parallel
  const auto e2 = b.add_arc(2, 3);
  const auto g = b.build();
  DipathFamily fam(g);
  fam.add(Dipath({e0, mid1, e2}));
  fam.add(Dipath({e0, mid2, e2}));
  EXPECT_THROW(conflict_interval(fam, 0, 1), wdag::DomainError);
}

TEST(HellyTest, UppInstancesPassAllChecks) {
  for (std::size_t k : {2u, 3u, 4u}) {
    const auto inst = wdag::gen::theorem2_instance(k);
    EXPECT_TRUE(pairwise_intersections_are_intervals(inst.family));
    EXPECT_TRUE(triples_satisfy_helly(inst.family));
  }
  const auto havet = wdag::gen::havet_instance();
  EXPECT_TRUE(pairwise_intersections_are_intervals(havet.family));
  EXPECT_TRUE(triples_satisfy_helly(havet.family));
}

TEST(HellyTest, RandomUppFamiliesSatisfyHelly) {
  wdag::util::Xoshiro256 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = wdag::gen::random_upp_one_cycle_instance(
        rng, wdag::gen::UppCycleParams{3, 2, 2, 2}, 25);
    EXPECT_TRUE(pairwise_intersections_are_intervals(inst.family));
    EXPECT_TRUE(triples_satisfy_helly(inst.family));
    // Property 3's headline consequence: clique number == load.
    const ConflictGraph cg(inst.family);
    EXPECT_EQ(clique_number(cg), wdag::paths::max_load(inst.family));
  }
}

TEST(K23Test, AbsentFromUppConflictGraphs) {
  const auto havet = wdag::gen::havet_instance();
  EXPECT_FALSE(find_k23(ConflictGraph(havet.family)).has_value());
  wdag::util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const auto inst = wdag::gen::random_upp_one_cycle_instance(
        rng, wdag::gen::UppCycleParams{2, 2, 1, 1}, 20);
    EXPECT_FALSE(find_k23(ConflictGraph(inst.family)).has_value());
  }
}

TEST(K23Test, DetectsPlantedK23) {
  // Explicit K_{2,3} with independent sides: u,v = 0,1; w = 2,3,4.
  const ConflictGraph cg(
      5, {{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}});
  const auto w = find_k23(cg);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->size(), 5u);
}

TEST(K23Test, RequiresIndependentSides) {
  // Same K_{2,3} plus the edge {2,3}: the triple is no longer independent,
  // but {2,4} x ... let's block everything: add edges {2,3},{2,4},{3,4}.
  const ConflictGraph cg(5, {{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4},
                             {2, 3}, {2, 4}, {3, 4}});
  EXPECT_FALSE(find_k23(cg).has_value());
}

TEST(K5MinusTwoTest, DetectsPlanted) {
  // K5 on {0..4} minus edges {0,1} and {2,3}.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      if ((i == 0 && j == 1) || (i == 2 && j == 3)) continue;
      edges.emplace_back(i, j);
    }
  }
  EXPECT_TRUE(find_k5_minus_two_edges(ConflictGraph(5, edges)).has_value());
}

TEST(K5MinusTwoTest, AbsentFromUppConflictGraphs) {
  const auto havet = wdag::gen::havet_instance();
  EXPECT_FALSE(
      find_k5_minus_two_edges(ConflictGraph(havet.family)).has_value());
  for (std::size_t k : {2u, 4u}) {
    const auto inst = wdag::gen::theorem2_instance(k);
    EXPECT_FALSE(
        find_k5_minus_two_edges(ConflictGraph(inst.family)).has_value());
  }
}

TEST(K5MinusTwoTest, AbsentFromSmallCliques) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) edges.emplace_back(i, j);
  }
  // Full K5 is NOT "K5 minus two independent edges" (no missing edges).
  EXPECT_FALSE(find_k5_minus_two_edges(ConflictGraph(5, edges)).has_value());
}

}  // namespace
