// Unit tests for exact independent-set computations.

#include <gtest/gtest.h>

#include "conflict/independent_set.hpp"
#include "gen/paper_instances.hpp"
#include "util/check.hpp"

namespace {

using namespace wdag::conflict;

ConflictGraph cycle(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return ConflictGraph(n, edges);
}

TEST(IndependentSetTest, EmptyAndEdgeless) {
  EXPECT_EQ(independence_number(ConflictGraph(0, {})), 0u);
  EXPECT_EQ(independence_number(ConflictGraph(5, {})), 5u);
}

TEST(IndependentSetTest, Cycles) {
  EXPECT_EQ(independence_number(cycle(5)), 2u);
  EXPECT_EQ(independence_number(cycle(6)), 3u);
  EXPECT_EQ(independence_number(cycle(9)), 4u);
}

TEST(IndependentSetTest, CompleteGraph) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) edges.emplace_back(i, j);
  }
  EXPECT_EQ(independence_number(ConflictGraph(6, edges)), 1u);
}

TEST(IndependentSetTest, ResultIsIndependent) {
  const auto cg = cycle(11);
  const auto set = max_independent_set(cg);
  EXPECT_TRUE(is_independent_set(cg, set));
  EXPECT_EQ(set.size(), 5u);
}

TEST(IndependentSetTest, WagnerGraphAlphaIsThree) {
  // The key fact behind Theorem 7's lower bound.
  const auto inst = wdag::gen::havet_instance();
  EXPECT_EQ(independence_number(ConflictGraph(inst.family)), 3u);
}

TEST(IndependentSetTest, ComplementInvolution) {
  const auto cg = cycle(7);
  const auto cc = complement(complement(cg));
  for (std::size_t u = 0; u < 7; ++u) {
    for (std::size_t v = 0; v < 7; ++v) {
      EXPECT_EQ(cg.adjacent(u, v), cc.adjacent(u, v));
    }
  }
}

TEST(IndependentSetTest, IsIndependentRejects) {
  const auto cg = cycle(5);
  EXPECT_FALSE(is_independent_set(cg, {0, 1}));
  EXPECT_TRUE(is_independent_set(cg, {0, 2}));
  EXPECT_TRUE(is_independent_set(cg, {}));
}

TEST(ReplicationLowerBoundTest, Theorem7Series) {
  const auto inst = wdag::gen::havet_instance();
  const ConflictGraph cg(inst.family);
  for (std::size_t h = 1; h <= 6; ++h) {
    EXPECT_EQ(replication_lower_bound(cg, h), (8 * h + 2) / 3) << h;
  }
}

TEST(ReplicationLowerBoundTest, Validation) {
  const auto cg = cycle(5);
  EXPECT_THROW(replication_lower_bound(cg, 0), wdag::InvalidArgument);
  EXPECT_EQ(replication_lower_bound(ConflictGraph(0, {}), 3), 0u);
  // C5: alpha == 2, so h copies of 5 vertices need >= ceil(5h/2) colors.
  EXPECT_EQ(replication_lower_bound(cg, 2), 5u);
}

}  // namespace
