// Cross-module integration scenarios exercising the full public API the way
// a downstream user would.

#include <gtest/gtest.h>

#include "conflict/coloring.hpp"
#include "core/maxrequests.hpp"
#include "core/rwa.hpp"
#include "core/solver.hpp"
#include "core/theorem1.hpp"
#include "dag/classify.hpp"
#include "gen/family_gen.hpp"
#include "gen/random_dag.hpp"
#include "gen/upp_gen.hpp"
#include "graph/graphio.hpp"
#include "helpers.hpp"
#include "graph/reachability.hpp"
#include "paths/load.hpp"
#include "paths/route.hpp"
#include "util/rng.hpp"

namespace {

using wdag::util::Xoshiro256;

TEST(IntegrationTest, ParseClassifySolveRoundTrip) {
  // A small optical backbone written as an edge list.
  const std::string topology =
      "# two PoPs feeding a protected core\n"
      "pop1 core1\n"
      "pop2 core1\n"
      "core1 core2\n"
      "core2 exit1\n"
      "core2 exit2\n";
  const auto g = wdag::graph::parse_edge_list(topology);
  const auto report = wdag::dag::classify(g);
  EXPECT_TRUE(report.is_dag);
  EXPECT_TRUE(report.is_upp);
  EXPECT_TRUE(report.wavelengths_equal_load());

  std::vector<wdag::paths::Request> reqs;
  reqs.push_back({*g.vertex_by_name("pop1"), *g.vertex_by_name("exit1")});
  reqs.push_back({*g.vertex_by_name("pop2"), *g.vertex_by_name("exit2")});
  reqs.push_back({*g.vertex_by_name("pop1"), *g.vertex_by_name("exit2")});
  const auto rwa = wdag::core::solve_rwa(g, reqs, wdag::paths::RoutePolicy::kUnique);
  // All three requests traverse core1 -> core2.
  EXPECT_EQ(rwa.assignment.load, 3u);
  EXPECT_EQ(rwa.assignment.wavelengths, 3u);
  EXPECT_TRUE(rwa.assignment.optimal);
}

TEST(IntegrationTest, MaxRequestsSelectionIsColorableWithBudget) {
  // Main-Theorem pipeline: select a max subfamily of load <= w, then prove
  // it really needs only w wavelengths by coloring it with Theorem 1.
  Xoshiro256 rng(2718);
  for (int trial = 0; trial < 8; ++trial) {
    const auto g = wdag::gen::random_no_internal_cycle_dag(rng, 16, 0.25);
    if (g.num_arcs() == 0) continue;
    const auto cand = wdag::gen::random_walk_family(rng, g, 16, 1, 5);
    for (std::size_t w : {1u, 2u, 3u}) {
      const auto sel = wdag::core::max_requests_exact(cand, w);
      ASSERT_TRUE(sel.proven);
      const auto chosen = cand.filter(sel.selected);
      if (chosen.empty()) continue;
      const auto colored = wdag::core::color_equal_load(chosen);
      EXPECT_LE(colored.wavelengths, w)
          << "selected subfamily not satisfiable with the budget";
    }
  }
}

TEST(IntegrationTest, SolverAgreesWithTheorem1OnEqualityRegime) {
  Xoshiro256 rng(1618);
  const auto g = wdag::gen::random_out_tree(rng, 40);
  const auto fam = wdag::gen::random_walk_family(rng, g, 60, 1, 7);
  const auto direct = wdag::core::color_equal_load(fam);
  const auto dispatched = wdag::test::solve_builtin(fam);
  EXPECT_EQ(dispatched.strategy, wdag::core::kStrategyTheorem1);
  EXPECT_EQ(direct.wavelengths, dispatched.wavelengths);
  EXPECT_EQ(direct.load, dispatched.load);
}

TEST(IntegrationTest, AllToAllOnUppCycleNetwork) {
  // The concluding remark's "all to all" instance on a UPP-DAG.
  const auto skel = wdag::gen::upp_one_cycle_skeleton(
      wdag::gen::UppCycleParams{2, 1, 1, 1});
  const auto fam = wdag::gen::all_to_all_family(*skel.graph);
  const auto res = wdag::test::solve_builtin(fam);
  EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));
  EXPECT_GE(res.wavelengths, res.load);
  EXPECT_LE(res.wavelengths, (4 * res.load + 2) / 3);
}

TEST(IntegrationTest, LargeTreeStress) {
  // A scale check: 2000 dipaths on a 500-vertex tree must color to exactly
  // the load in reasonable time.
  Xoshiro256 rng(31415);
  const auto g = wdag::gen::random_out_tree(rng, 500);
  const auto fam = wdag::gen::random_walk_family(rng, g, 2000, 1, 12);
  const auto res = wdag::core::color_equal_load(fam);
  EXPECT_EQ(res.wavelengths, res.load);
  EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));
}

TEST(IntegrationTest, LargeLayeredStress) {
  Xoshiro256 rng(92653);
  const auto g = wdag::gen::random_layered_dag(rng, 12, 8, 0.25);
  // Layered graphs with width > 1 typically contain internal cycles; the
  // general solver must still produce a valid (possibly heuristic)
  // assignment at this size.
  const auto fam = wdag::gen::random_request_family(rng, g, 300);
  wdag::core::SolveOptions opt;
  opt.exact_threshold = 0;
  const auto res = wdag::test::solve_builtin(fam, opt);
  EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));
  EXPECT_GE(res.wavelengths, res.load);
}

TEST(IntegrationTest, DotExportOfSolvedInstance) {
  const auto skel = wdag::gen::upp_one_cycle_skeleton(
      wdag::gen::UppCycleParams{2, 1, 1, 1});
  const auto dot = wdag::graph::to_dot(*skel.graph, "gadget");
  EXPECT_NE(dot.find("digraph gadget"), std::string::npos);
  EXPECT_NE(dot.find("b1"), std::string::npos);
}

}  // namespace
