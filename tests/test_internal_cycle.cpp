// Unit tests for internal-cycle detection — the paper's central criterion.

#include <gtest/gtest.h>

#include "dag/internal_cycle.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "graph/properties.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"
#include "util/union_find.hpp"

namespace {

using namespace wdag::dag;
using wdag::graph::Digraph;
using wdag::graph::DigraphBuilder;

TEST(InternalCycleTest, TreesHaveNone) {
  EXPECT_FALSE(has_internal_cycle(wdag::test::chain(10)));
  EXPECT_FALSE(has_internal_cycle(wdag::test::binary_out_tree(4)));
  EXPECT_EQ(internal_cycle_count(wdag::test::chain(10)), 0u);
}

TEST(InternalCycleTest, PlainDiamondHasNone) {
  // The diamond's 4-cycle touches the source 0 and the sink 3, so it is an
  // oriented cycle but NOT an internal one.
  EXPECT_FALSE(has_internal_cycle(wdag::test::diamond()));
  EXPECT_FALSE(find_internal_cycle(wdag::test::diamond()).has_value());
}

TEST(InternalCycleTest, GuardedDiamondHasOne) {
  const Digraph g = wdag::test::guarded_diamond();
  EXPECT_TRUE(has_internal_cycle(g));
  EXPECT_EQ(internal_cycle_count(g), 1u);
  const auto c = find_internal_cycle(g);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(is_internal_cycle(g, *c));
  EXPECT_EQ(c->size(), 4u);
}

TEST(InternalCycleTest, Figure3HasExactlyOne) {
  const auto inst = wdag::gen::figure3_instance();
  EXPECT_TRUE(has_internal_cycle(*inst.graph));
  EXPECT_EQ(internal_cycle_count(*inst.graph), 1u);
}

TEST(InternalCycleTest, Theorem2InstanceHasExactlyOne) {
  for (std::size_t k = 1; k <= 5; ++k) {
    const auto inst = wdag::gen::theorem2_instance(k);
    EXPECT_EQ(internal_cycle_count(*inst.graph), 1u) << "k=" << k;
    const auto c = find_internal_cycle(*inst.graph);
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(is_internal_cycle(*inst.graph, *c));
    EXPECT_EQ(c->size(), 2 * k);
  }
}

TEST(InternalCycleTest, HavetInstanceHasExactlyOne) {
  const auto inst = wdag::gen::havet_instance();
  EXPECT_EQ(internal_cycle_count(*inst.graph), 1u);
}

TEST(InternalCycleTest, Figure1HasMany) {
  const auto inst = wdag::gen::figure1_pathological(4);
  EXPECT_TRUE(has_internal_cycle(*inst.graph));
  EXPECT_GE(internal_cycle_count(*inst.graph), 2u);
}

TEST(InternalCycleTest, GuardedParallelArcs) {
  // s -> a, two parallel arcs a -> b, b -> t: the parallel pair forms an
  // internal 2-cycle.
  DigraphBuilder bld;
  const auto s = bld.vertex("s"), a = bld.vertex("a"), b = bld.vertex("b"),
             t = bld.vertex("t");
  bld.add_arc(s, a);
  bld.add_arc(a, b);
  bld.add_arc(a, b);
  bld.add_arc(b, t);
  const Digraph g = bld.build();
  EXPECT_TRUE(has_internal_cycle(g));
  EXPECT_EQ(internal_cycle_count(g), 1u);
  const auto c = find_internal_cycle(g);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 2u);
}

TEST(InternalCycleTest, UnguardedParallelArcsAreNotInternal) {
  DigraphBuilder bld(2);
  bld.add_arc(0, 1);
  bld.add_arc(0, 1);
  EXPECT_FALSE(has_internal_cycle(bld.build()));
}

TEST(InternalCycleTest, CycleNeedsAllFourGuards) {
  // Removing any single guard arc of the guarded diamond exposes a source
  // or sink on the cycle, destroying internality.
  const Digraph full = wdag::test::guarded_diamond();
  ASSERT_TRUE(has_internal_cycle(full));
  // Guards are arcs 0 (4->0) and 5 (3->5).
  for (wdag::graph::ArcId doomed : {wdag::graph::ArcId{0}, wdag::graph::ArcId{5}}) {
    DigraphBuilder b(full.num_vertices());
    for (wdag::graph::ArcId a = 0; a < full.num_arcs(); ++a) {
      if (a != doomed) b.add_arc(full.tail(a), full.head(a));
    }
    EXPECT_FALSE(has_internal_cycle(b.build())) << "without arc " << doomed;
  }
}

TEST(InternalCycleTest, CountMatchesCyclomaticFormula) {
  wdag::util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Digraph g = wdag::gen::random_dag(rng, 25, 0.12);
    // Count internal-arc cyclomatic number independently.
    const auto mask = wdag::graph::internal_vertex_mask(g);
    std::size_t m = 0;
    wdag::util::UnionFind uf(g.num_vertices());
    std::size_t touched_verts = 0;
    std::vector<bool> touched(g.num_vertices(), false);
    for (wdag::graph::ArcId a = 0; a < g.num_arcs(); ++a) {
      if (mask[g.tail(a)] && mask[g.head(a)]) {
        ++m;
        for (auto v : {g.tail(a), g.head(a)}) {
          if (!touched[v]) {
            touched[v] = true;
            ++touched_verts;
          }
        }
        uf.unite(g.tail(a), g.head(a));
      }
    }
    // components among touched vertices:
    std::size_t comps = 0;
    std::vector<bool> seen_root(g.num_vertices(), false);
    for (wdag::graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (touched[v]) {
        const auto r = uf.find(v);
        if (!seen_root[r]) {
          seen_root[r] = true;
          ++comps;
        }
      }
    }
    EXPECT_EQ(internal_cycle_count(g), m - touched_verts + comps);
    EXPECT_EQ(has_internal_cycle(g), internal_cycle_count(g) > 0);
  }
}

TEST(InternalCycleTest, ExtractedCycleIsAlwaysInternalAndValid) {
  wdag::util::Xoshiro256 rng(77);
  int found = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Digraph g = wdag::gen::random_dag(rng, 20, 0.15);
    const auto c = find_internal_cycle(g);
    EXPECT_EQ(c.has_value(), has_internal_cycle(g));
    if (c) {
      ++found;
      EXPECT_TRUE(is_internal_cycle(g, *c));
    }
  }
  EXPECT_GT(found, 0) << "random sweep never produced an internal cycle";
}

TEST(InternalCycleTest, IsInternalCycleRejectsBoundaryCycles) {
  const Digraph g = wdag::test::diamond();
  OrientedCycle c;
  c.steps = {
      {g.find_arc(0, 1), true},
      {g.find_arc(1, 3), true},
      {g.find_arc(2, 3), false},
      {g.find_arc(0, 2), false},
  };
  ASSERT_TRUE(is_valid_oriented_cycle(g, c));
  EXPECT_FALSE(is_internal_cycle(g, c));  // touches source 0 and sink 3
}

}  // namespace
