// Tests for the max-requests-under-w application (paper's concluding
// remark).

#include <gtest/gtest.h>

#include "core/maxrequests.hpp"
#include "gen/family_gen.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "helpers.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag::core;
using wdag::paths::Dipath;
using wdag::paths::DipathFamily;

std::size_t selected_load(const DipathFamily& fam,
                          const std::vector<bool>& mask) {
  return wdag::paths::max_load(fam.filter(mask));
}

TEST(MaxRequestsGreedyTest, RespectsBudget) {
  const auto g = wdag::test::chain(6);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1, 2, 3, 4}));
  fam.add(Dipath({1, 2}));
  fam.add(Dipath({2, 3}));
  fam.add(Dipath({2}));
  const auto res = max_requests_greedy(fam, 2);
  EXPECT_LE(selected_load(fam, res.selected), 2u);
  // Every candidate crosses arc 2, so no selection can exceed the budget 2
  // there — and greedy reaches that cap.
  EXPECT_EQ(res.count, 2u);
}

TEST(MaxRequestsGreedyTest, ZeroBudgetSelectsNothing) {
  const auto g = wdag::test::chain(3);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1}));
  const auto res = max_requests_greedy(fam, 0);
  EXPECT_EQ(res.count, 0u);
}

TEST(MaxRequestsExactTest, BeatsOrMatchesGreedy) {
  wdag::util::Xoshiro256 rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = wdag::gen::random_no_internal_cycle_dag(rng, 14, 0.2);
    if (g.num_arcs() == 0) continue;
    const auto fam = wdag::gen::random_walk_family(rng, g, 14, 1, 5);
    for (std::size_t w : {1u, 2u, 3u}) {
      const auto greedy = max_requests_greedy(fam, w);
      const auto exact = max_requests_exact(fam, w);
      ASSERT_TRUE(exact.proven);
      EXPECT_GE(exact.count, greedy.count);
      EXPECT_LE(selected_load(fam, exact.selected), w);
      EXPECT_LE(selected_load(fam, greedy.selected), w);
    }
  }
}

TEST(MaxRequestsExactTest, FullBudgetTakesEverything) {
  const auto g = wdag::test::chain(4);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1}));
  fam.add(Dipath({0, 1}));
  fam.add(Dipath({1, 2}));
  const auto res = max_requests_exact(fam, 10);
  ASSERT_TRUE(res.proven);
  EXPECT_EQ(res.count, 3u);
}

TEST(MaxRequestsExactTest, TightPackingOnChain) {
  // Four copies of the same arc path under w == 2: exactly 2 fit.
  const auto g = wdag::test::chain(3);
  DipathFamily fam(g);
  for (int i = 0; i < 4; ++i) fam.add(Dipath({0, 1}));
  const auto res = max_requests_exact(fam, 2);
  ASSERT_TRUE(res.proven);
  EXPECT_EQ(res.count, 2u);
}

TEST(MaxRequestsExactTest, PrefersManyShortOverOneLong) {
  const auto g = wdag::test::chain(7);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1, 2, 3, 4, 5}));  // blocks everything at w == 1
  fam.add(Dipath({0, 1}));
  fam.add(Dipath({2, 3}));
  fam.add(Dipath({4, 5}));
  const auto res = max_requests_exact(fam, 1);
  ASSERT_TRUE(res.proven);
  EXPECT_EQ(res.count, 3u);
  EXPECT_FALSE(res.selected[0]);
}

TEST(MaxRequestsExactTest, DomainChecks) {
  // Internal-cycle hosts are rejected: the load test would be unsound.
  const auto inst = wdag::gen::figure3_instance();
  EXPECT_THROW(max_requests_exact(inst.family, 2), wdag::DomainError);
  const auto tri = wdag::test::directed_triangle();
  DipathFamily fam(tri);
  fam.add(Dipath({0}));
  EXPECT_THROW(max_requests_exact(fam, 1), wdag::DomainError);
}

TEST(MaxRequestsExactTest, EmptyFamily) {
  const auto g = wdag::test::chain(3);
  const auto res = max_requests_exact(DipathFamily(g), 2);
  EXPECT_TRUE(res.proven);
  EXPECT_EQ(res.count, 0u);
}

TEST(MaxRequestsTest, SelectionSatisfiableWithWWavelengths) {
  // End-to-end consistency with the Main Theorem: on a no-internal-cycle
  // DAG, the selected subfamily (load <= w) must be colorable with w
  // wavelengths — verified via the Theorem-1 colorer in test_integration.
  wdag::util::Xoshiro256 rng(77);
  const auto g = wdag::gen::random_out_tree(rng, 20);
  const auto fam = wdag::gen::random_walk_family(rng, g, 20, 1, 6);
  const auto res = max_requests_exact(fam, 2);
  ASSERT_TRUE(res.proven);
  EXPECT_LE(selected_load(fam, res.selected), 2u);
}

}  // namespace
