// Unit tests for oriented cycles and their alternating-run decomposition.

#include <gtest/gtest.h>

#include "dag/oriented_cycle.hpp"
#include "helpers.hpp"
#include "util/check.hpp"

namespace {

using namespace wdag::dag;
using wdag::graph::Digraph;
using wdag::graph::DigraphBuilder;

/// The diamond's underlying 4-cycle as an oriented cycle:
/// 0 ->(a0) 1 ->? no: 1 <- nothing... walk 0 ->(0,1)-> 1 <-(1,3 fwd) 3 ...
/// Use: 0 ->(0->1), (1->3), back (2->3) reversed, (0->2) reversed.
OrientedCycle diamond_cycle(const Digraph& g) {
  OrientedCycle c;
  c.steps = {
      {g.find_arc(0, 1), true},   // 0 -> 1
      {g.find_arc(1, 3), true},   // 1 -> 3
      {g.find_arc(2, 3), false},  // 3 -> 2 (backward)
      {g.find_arc(0, 2), false},  // 2 -> 0 (backward)
  };
  return c;
}

TEST(OrientedCycleTest, StepEndpoints) {
  const Digraph g = wdag::test::diamond();
  const CycleStep fwd{g.find_arc(0, 1), true};
  EXPECT_EQ(step_start(g, fwd), 0u);
  EXPECT_EQ(step_end(g, fwd), 1u);
  const CycleStep bwd{g.find_arc(0, 1), false};
  EXPECT_EQ(step_start(g, bwd), 1u);
  EXPECT_EQ(step_end(g, bwd), 0u);
}

TEST(OrientedCycleTest, DiamondCycleIsValid) {
  const Digraph g = wdag::test::diamond();
  EXPECT_TRUE(is_valid_oriented_cycle(g, diamond_cycle(g)));
}

TEST(OrientedCycleTest, BrokenChainIsInvalid) {
  const Digraph g = wdag::test::diamond();
  OrientedCycle c = diamond_cycle(g);
  std::swap(c.steps[1], c.steps[2]);  // breaks the walk continuity
  EXPECT_FALSE(is_valid_oriented_cycle(g, c));
}

TEST(OrientedCycleTest, RepeatedArcIsInvalid) {
  const Digraph g = wdag::test::diamond();
  OrientedCycle c;
  c.steps = {{g.find_arc(0, 1), true}, {g.find_arc(0, 1), false}};
  EXPECT_FALSE(is_valid_oriented_cycle(g, c));
}

TEST(OrientedCycleTest, ParallelArcsFormATwoCycle) {
  DigraphBuilder b(2);
  const auto a1 = b.add_arc(0, 1);
  const auto a2 = b.add_arc(0, 1);
  const Digraph g = b.build();
  OrientedCycle c;
  c.steps = {{a1, true}, {a2, false}};
  EXPECT_TRUE(is_valid_oriented_cycle(g, c));
}

TEST(OrientedCycleTest, TooShortIsInvalid) {
  const Digraph g = wdag::test::diamond();
  OrientedCycle c;
  c.steps = {{g.find_arc(0, 1), true}};
  EXPECT_FALSE(is_valid_oriented_cycle(g, c));
}

TEST(OrientedCycleTest, CycleVerticesWalkOrder) {
  const Digraph g = wdag::test::diamond();
  const auto vs = cycle_vertices(g, diamond_cycle(g));
  EXPECT_EQ(vs, (std::vector<wdag::graph::VertexId>{0, 1, 3, 2}));
}

TEST(DecomposeCycleTest, DiamondDecomposition) {
  const Digraph g = wdag::test::diamond();
  const auto d = decompose_cycle(g, diamond_cycle(g));
  // One cycle source (0, both arcs leave) and one sink (3)? No: the walk
  // has direction changes at 3 (fwd->bwd) and 0 (bwd->fwd) AND at 1? 1 is
  // pass-through (fwd->fwd)... runs: [0->1->3] forward, [3->2->0] backward:
  // k == 1.
  ASSERT_EQ(d.k(), 1u);
  EXPECT_EQ(d.b[0], 0u);
  EXPECT_EQ(d.c[0], 3u);
  ASSERT_EQ(d.run_a[0].size(), 2u);  // 0->1, 1->3
  ASSERT_EQ(d.run_b[0].size(), 2u);  // 0->2, 2->3 (as a forward dipath)
  EXPECT_EQ(g.tail(d.run_b[0].front()), 0u);
  EXPECT_EQ(g.head(d.run_b[0].back()), 3u);
}

TEST(DecomposeCycleTest, RotationIndependence) {
  const Digraph g = wdag::test::diamond();
  OrientedCycle c = diamond_cycle(g);
  // Rotate the step list; decomposition must still find the same structure.
  std::rotate(c.steps.begin(), c.steps.begin() + 2, c.steps.end());
  ASSERT_TRUE(is_valid_oriented_cycle(g, c));
  const auto d = decompose_cycle(g, c);
  ASSERT_EQ(d.k(), 1u);
  EXPECT_EQ(d.b[0], 0u);
  EXPECT_EQ(d.c[0], 3u);
}

TEST(DecomposeCycleTest, TwoSourceCycle) {
  // b1 -> c1 <- b2 -> c2 <- b1: a 4-run cycle with k == 2.
  DigraphBuilder bld;
  const auto b1 = bld.vertex("b1"), c1 = bld.vertex("c1"),
             b2 = bld.vertex("b2"), c2 = bld.vertex("c2");
  const auto a11 = bld.add_arc(b1, c1);
  const auto a21 = bld.add_arc(b2, c1);
  const auto a22 = bld.add_arc(b2, c2);
  const auto a12 = bld.add_arc(b1, c2);
  const Digraph g = bld.build();
  OrientedCycle c;
  c.steps = {{a11, true}, {a21, false}, {a22, true}, {a12, false}};
  ASSERT_TRUE(is_valid_oriented_cycle(g, c));
  const auto d = decompose_cycle(g, c);
  EXPECT_EQ(d.k(), 2u);
  // run_b[i] must go b_i -> c_{i-1 mod k}.
  for (std::size_t i = 0; i < d.k(); ++i) {
    EXPECT_EQ(g.tail(d.run_b[i].front()), d.b[i]);
    EXPECT_EQ(g.head(d.run_b[i].back()), d.c[(i + d.k() - 1) % d.k()]);
    EXPECT_EQ(g.tail(d.run_a[i].front()), d.b[i]);
    EXPECT_EQ(g.head(d.run_a[i].back()), d.c[i]);
  }
}

TEST(DecomposeCycleTest, InvalidCycleThrows) {
  const Digraph g = wdag::test::diamond();
  OrientedCycle c;
  c.steps = {{g.find_arc(0, 1), true}};
  EXPECT_THROW(decompose_cycle(g, c), wdag::InvalidArgument);
}

TEST(OrientedCycleTest, ToStringMentionsVertices) {
  const Digraph g = wdag::test::diamond();
  const auto s = cycle_to_string(g, diamond_cycle(g));
  EXPECT_NE(s.find("v0"), std::string::npos);
  EXPECT_NE(s.find("v3"), std::string::npos);
}

}  // namespace
