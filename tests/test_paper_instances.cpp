// Structural verification of every worked example in the paper.

#include <gtest/gtest.h>

#include "conflict/clique.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "dag/classify.hpp"
#include "gen/paper_instances.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"

namespace {

using wdag::conflict::ConflictGraph;

/// Largest independent set, brute force (for the small paper gadgets).
std::size_t independence_number(const ConflictGraph& cg) {
  const std::size_t n = cg.size();
  std::size_t best = 0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      if (!(mask >> i & 1)) continue;
      for (std::size_t j = i + 1; j < n && ok; ++j) {
        if ((mask >> j & 1) && cg.adjacent(i, j)) ok = false;
      }
    }
    if (ok) {
      best = std::max(best,
                      static_cast<std::size_t>(__builtin_popcountll(mask)));
    }
  }
  return best;
}

// ---- Figure 1 -------------------------------------------------------------

TEST(Figure1Test, LoadTwoCompleteConflicts) {
  for (std::size_t k = 1; k <= 7; ++k) {
    const auto inst = wdag::gen::figure1_pathological(k);
    EXPECT_EQ(inst.family.size(), k);
    EXPECT_EQ(wdag::paths::max_load(inst.family), k >= 2 ? 2u : 1u);
    const ConflictGraph cg(inst.family);
    EXPECT_EQ(cg.num_edges(), k * (k - 1) / 2) << "k=" << k;
  }
}

TEST(Figure1Test, IsDagAndNotEqualityRegime) {
  const auto inst = wdag::gen::figure1_pathological(5);
  const auto r = wdag::dag::classify(*inst.graph);
  EXPECT_TRUE(r.is_dag);
  EXPECT_FALSE(r.wavelengths_equal_load());  // has internal cycles
  EXPECT_FALSE(r.is_upp);
}

TEST(Figure1Test, WavelengthsEqualK) {
  for (std::size_t k : {2u, 4u, 6u}) {
    const auto inst = wdag::gen::figure1_pathological(k);
    const auto chi =
        wdag::conflict::chromatic_number(ConflictGraph(inst.family));
    ASSERT_TRUE(chi.proven);
    EXPECT_EQ(chi.chromatic_number, k);
  }
}

TEST(Figure1Test, RejectsZero) {
  EXPECT_THROW(wdag::gen::figure1_pathological(0), wdag::InvalidArgument);
}

// ---- Figure 3 -------------------------------------------------------------

TEST(Figure3Test, StructureMatchesPaper) {
  const auto inst = wdag::gen::figure3_instance();
  const auto r = wdag::dag::classify(*inst.graph);
  EXPECT_TRUE(r.is_dag);
  EXPECT_FALSE(r.is_upp);               // two dipaths b -> d
  EXPECT_EQ(r.internal_cycles, 1u);
  EXPECT_EQ(inst.family.size(), 5u);
  EXPECT_EQ(wdag::paths::max_load(inst.family), 2u);
}

TEST(Figure3Test, ConflictGraphIsC5WithChiThree) {
  const auto inst = wdag::gen::figure3_instance();
  const ConflictGraph cg(inst.family);
  EXPECT_EQ(cg.size(), 5u);
  EXPECT_EQ(cg.num_edges(), 5u);
  const auto chi = wdag::conflict::chromatic_number(cg);
  EXPECT_EQ(chi.chromatic_number, 3u);  // w == 3 > pi == 2
}

// ---- Theorem 2 gadget (Figure 5) ------------------------------------------

class Theorem2Gadget : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem2Gadget, OddConflictCycleForcesThreeColors) {
  const std::size_t k = GetParam();
  const auto inst = wdag::gen::theorem2_instance(k);
  EXPECT_EQ(inst.family.size(), 2 * k + 1);
  EXPECT_EQ(wdag::paths::max_load(inst.family), 2u);

  const ConflictGraph cg(inst.family);
  // Conflict graph is the odd cycle C_{2k+1}: every degree is 2 and the
  // graph is connected with 2k+1 edges.
  EXPECT_EQ(cg.num_edges(), 2 * k + 1);
  for (std::size_t v = 0; v < cg.size(); ++v) EXPECT_EQ(cg.degree(v), 2u);
  const auto chi = wdag::conflict::chromatic_number(cg);
  EXPECT_EQ(chi.chromatic_number, 3u);

  const auto r = wdag::dag::classify(*inst.graph);
  EXPECT_EQ(r.internal_cycles, 1u);
  EXPECT_EQ(r.is_upp, k >= 2);
}

INSTANTIATE_TEST_SUITE_P(KSweep, Theorem2Gadget,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

// ---- Theorem 7 / Figure 9 (Havet gadget) -----------------------------------

TEST(HavetTest, StructureMatchesPaper) {
  const auto inst = wdag::gen::havet_instance();
  const auto r = wdag::dag::classify(*inst.graph);
  EXPECT_TRUE(r.is_dag);
  EXPECT_TRUE(r.is_upp);
  EXPECT_EQ(r.internal_cycles, 1u);
  EXPECT_TRUE(r.theorem6_applies());
  EXPECT_EQ(inst.family.size(), 8u);
  EXPECT_EQ(wdag::paths::max_load(inst.family), 2u);
}

TEST(HavetTest, ConflictGraphIsWagnerV8) {
  const auto inst = wdag::gen::havet_instance();
  const ConflictGraph cg(inst.family);
  ASSERT_EQ(cg.size(), 8u);
  EXPECT_EQ(cg.num_edges(), 12u);  // C8 + 4 antipodal chords
  for (std::size_t v = 0; v < 8; ++v) EXPECT_EQ(cg.degree(v), 3u);
  // Key invariants of V8 used by Theorem 7:
  EXPECT_EQ(independence_number(cg), 3u);
  EXPECT_EQ(wdag::conflict::clique_number(cg), 2u);  // triangle-free
  EXPECT_EQ(wdag::conflict::chromatic_number(cg).chromatic_number, 3u);
}

TEST(HavetTest, ReplicationAttainsTheTightBound) {
  // pi = 2h and w = ceil(8h/3) = ceil(4/3 * pi): Theorem 7.
  const auto base = wdag::gen::havet_instance();
  for (std::size_t h = 1; h <= 3; ++h) {
    const auto fam = base.family.replicate(h);
    EXPECT_EQ(wdag::paths::max_load(fam), 2 * h);
    const auto chi = wdag::conflict::chromatic_number(ConflictGraph(fam));
    ASSERT_TRUE(chi.proven);
    EXPECT_EQ(chi.chromatic_number, (8 * h + 2) / 3) << "h=" << h;
    EXPECT_EQ(chi.chromatic_number, (4 * (2 * h) + 2) / 3) << "h=" << h;
  }
}

TEST(InstanceTest, ReplicateSharesGraph) {
  const auto base = wdag::gen::havet_instance();
  const auto rep = base.replicate(2);
  EXPECT_EQ(rep.graph.get(), base.graph.get());
  EXPECT_EQ(rep.family.size(), 16u);
}

}  // namespace
