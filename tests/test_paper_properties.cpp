// Randomized property tests tying the paper's statements together across
// modules: the Main Theorem equivalence, Property 3, Corollary 5 and the
// Theorem 6 bound, each checked on generated instances against exact
// oracles.

#include <gtest/gtest.h>

#include "conflict/clique.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "conflict/helly.hpp"
#include "core/solver.hpp"
#include "core/theorem1.hpp"
#include "dag/classify.hpp"
#include "dag/internal_cycle.hpp"
#include "gen/family_gen.hpp"
#include "gen/paper_instances.hpp"
#include "helpers.hpp"
#include "gen/random_dag.hpp"
#include "gen/upp_gen.hpp"
#include "paths/load.hpp"
#include "util/rng.hpp"

namespace {

using wdag::conflict::chromatic_number;
using wdag::conflict::clique_number;
using wdag::conflict::ConflictGraph;
using wdag::util::Xoshiro256;

// --- Main Theorem, forward direction: no internal cycle => w == pi --------

class MainTheoremForward : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MainTheoremForward, EqualityHoldsForRandomFamilies) {
  Xoshiro256 rng(GetParam());
  const auto g = wdag::gen::random_no_internal_cycle_dag(rng, 16, 0.2);
  if (g.num_arcs() == 0) GTEST_SKIP();
  const auto fam = wdag::gen::random_walk_family(rng, g, 16, 1, 5);
  const auto pi = wdag::paths::max_load(fam);
  const auto chi = chromatic_number(ConflictGraph(fam));
  ASSERT_TRUE(chi.proven);
  EXPECT_EQ(chi.chromatic_number, pi)
      << "w != pi on an internal-cycle-free DAG";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MainTheoremForward,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- Main Theorem, reverse direction: internal cycle => some family with
// --- w > pi (Theorem 2's construction via the solver's own gadget).

TEST(MainTheoremReverse, GadgetFamilyBreaksEquality) {
  for (std::size_t k : {1u, 2u, 3u, 5u}) {
    const auto inst = wdag::gen::theorem2_instance(k);
    const auto pi = wdag::paths::max_load(inst.family);
    const auto chi = chromatic_number(ConflictGraph(inst.family));
    EXPECT_EQ(pi, 2u);
    EXPECT_EQ(chi.chromatic_number, 3u) << "k=" << k;
  }
}

// --- Property 3: on UPP-DAGs, clique number == load ------------------------

class Property3Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Property3Sweep, CliqueEqualsLoadOnUpp) {
  Xoshiro256 rng(GetParam());
  const wdag::gen::UppCycleParams params{
      2 + static_cast<std::size_t>(rng.below(4)),
      1 + static_cast<std::size_t>(rng.below(3)),
      1 + static_cast<std::size_t>(rng.below(2)),
      1 + static_cast<std::size_t>(rng.below(2))};
  const auto inst = wdag::gen::random_upp_one_cycle_instance(rng, params, 24);
  const ConflictGraph cg(inst.family);
  EXPECT_EQ(clique_number(cg), wdag::paths::max_load(inst.family));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Property3Sweep,
                         ::testing::Range<std::uint64_t>(100, 115));

TEST(Property3, TreesAlsoSatisfyCliqueEqualsLoad) {
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = wdag::gen::random_out_tree(rng, 25);
    const auto fam = wdag::gen::random_walk_family(rng, g, 20, 1, 6);
    EXPECT_EQ(clique_number(ConflictGraph(fam)), wdag::paths::max_load(fam));
  }
}

TEST(Property3, CanFailWithoutUpp) {
  // Figure 1 separates clique (== k) from load (== 2), witnessing that the
  // UPP hypothesis is necessary.
  const auto inst = wdag::gen::figure1_pathological(5);
  const ConflictGraph cg(inst.family);
  EXPECT_EQ(clique_number(cg), 5u);
  EXPECT_EQ(wdag::paths::max_load(inst.family), 2u);
}

// --- Corollary 5: UPP conflict graphs are K_{2,3}-free ---------------------

class Corollary5Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Corollary5Sweep, NoK23WithIndependentSides) {
  Xoshiro256 rng(GetParam());
  const wdag::gen::UppCycleParams params{
      2 + static_cast<std::size_t>(rng.below(3)), 1, 1, 1};
  const auto inst = wdag::gen::random_upp_one_cycle_instance(rng, params, 20);
  EXPECT_FALSE(wdag::conflict::find_k23(ConflictGraph(inst.family)).has_value());
  EXPECT_FALSE(wdag::conflict::find_k5_minus_two_edges(ConflictGraph(inst.family))
                   .has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Corollary5Sweep,
                         ::testing::Range<std::uint64_t>(200, 212));

// --- Theorem 6 bound via the exact oracle ----------------------------------

class Theorem6BoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem6BoundSweep, ExactChromaticWithinFourThirdsLoad) {
  Xoshiro256 rng(GetParam());
  const wdag::gen::UppCycleParams params{
      2 + static_cast<std::size_t>(rng.below(3)),
      1 + static_cast<std::size_t>(rng.below(2)), 1, 1};
  const auto inst = wdag::gen::random_upp_one_cycle_instance(rng, params, 18);
  const auto pi = wdag::paths::max_load(inst.family);
  const auto chi = chromatic_number(ConflictGraph(inst.family));
  ASSERT_TRUE(chi.proven);
  EXPECT_LE(chi.chromatic_number, (4 * pi + 2) / 3)
      << "Theorem 6 bound violated: pi=" << pi;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem6BoundSweep,
                         ::testing::Range<std::uint64_t>(300, 315));

// --- Solver end-to-end consistency -----------------------------------------

TEST(SolverConsistency, OptimalFlagNeverLies) {
  Xoshiro256 rng(999);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = wdag::gen::random_dag(rng, 14, 0.2);
    if (g.num_arcs() == 0) continue;
    const auto fam = wdag::gen::random_walk_family(rng, g, 12, 1, 4);
    const auto res = wdag::test::solve_builtin(fam);
    const auto chi = chromatic_number(ConflictGraph(fam));
    ASSERT_TRUE(chi.proven);
    EXPECT_GE(res.wavelengths, chi.chromatic_number);
    if (res.optimal) {
      EXPECT_EQ(res.wavelengths, chi.chromatic_number)
          << "solver claimed optimality with a suboptimal coloring";
    }
  }
}

}  // namespace
