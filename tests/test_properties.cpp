// Unit tests for structural graph properties.

#include <gtest/gtest.h>

#include "graph/properties.hpp"
#include "helpers.hpp"

namespace {

using namespace wdag::graph;

TEST(PropertiesTest, ChainSourcesAndSinks) {
  const Digraph g = wdag::test::chain(4);
  EXPECT_EQ(sources(g), (std::vector<VertexId>{0}));
  EXPECT_EQ(sinks(g), (std::vector<VertexId>{3}));
}

TEST(PropertiesTest, InternalVerticesOfChain) {
  const Digraph g = wdag::test::chain(4);
  EXPECT_EQ(internal_vertices(g), (std::vector<VertexId>{1, 2}));
  const auto mask = internal_vertex_mask(g);
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_TRUE(mask[2]);
  EXPECT_FALSE(mask[3]);
}

TEST(PropertiesTest, DiamondInternals) {
  const Digraph g = wdag::test::diamond();
  EXPECT_EQ(internal_vertices(g), (std::vector<VertexId>{1, 2}));
}

TEST(PropertiesTest, GuardedDiamondInternals) {
  const Digraph g = wdag::test::guarded_diamond();
  // 0,1,2,3 are internal; 4 (source) and 5 (sink) are not.
  EXPECT_EQ(internal_vertices(g), (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(PropertiesTest, IsolatedVertexIsNeitherSourceNorInternal) {
  DigraphBuilder b(3);
  b.add_arc(0, 1);
  const Digraph g = b.build();
  const auto stats = degree_stats(g);
  EXPECT_EQ(stats.num_isolated, 1u);
  // Isolated vertices count as sources AND sinks degree-wise.
  EXPECT_EQ(stats.num_sources, 2u);
  EXPECT_EQ(stats.num_sinks, 2u);
  EXPECT_TRUE(internal_vertices(g).empty());
}

TEST(PropertiesTest, SimpleDetection) {
  EXPECT_TRUE(is_simple(wdag::test::diamond()));
  DigraphBuilder b(2);
  b.add_arc(0, 1);
  b.add_arc(0, 1);
  EXPECT_FALSE(is_simple(b.build()));
}

TEST(PropertiesTest, ComponentsOfDisconnectedGraph) {
  DigraphBuilder b(6);
  b.add_arc(0, 1);
  b.add_arc(1, 2);
  b.add_arc(3, 4);
  const Digraph g = b.build();
  const auto comp = underlying_components(g);
  EXPECT_EQ(comp.count, 3u);  // {0,1,2} {3,4} {5}
  EXPECT_EQ(comp.id[0], comp.id[2]);
  EXPECT_EQ(comp.id[3], comp.id[4]);
  EXPECT_NE(comp.id[0], comp.id[3]);
  EXPECT_NE(comp.id[0], comp.id[5]);
  EXPECT_FALSE(is_underlying_connected(g));
}

TEST(PropertiesTest, ConnectivityIgnoresDirection) {
  DigraphBuilder b(3);
  b.add_arc(0, 2);
  b.add_arc(1, 2);  // 0 and 1 connected only through head-sharing
  EXPECT_TRUE(is_underlying_connected(b.build()));
}

TEST(PropertiesTest, DegreeStats) {
  const Digraph g = wdag::test::diamond();
  const auto s = degree_stats(g);
  EXPECT_EQ(s.max_out, 2u);
  EXPECT_EQ(s.max_in, 2u);
  EXPECT_EQ(s.num_sources, 1u);
  EXPECT_EQ(s.num_sinks, 1u);
  EXPECT_EQ(s.num_isolated, 0u);
}

TEST(PropertiesTest, EmptyGraph) {
  const Digraph g = DigraphBuilder().build();
  EXPECT_TRUE(sources(g).empty());
  EXPECT_TRUE(sinks(g).empty());
  EXPECT_TRUE(is_underlying_connected(g));
}

}  // namespace
