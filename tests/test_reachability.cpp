// Unit tests for reachability queries.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "gen/random_dag.hpp"
#include "graph/reachability.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace {

using wdag::graph::ancestors;
using wdag::graph::descendants;
using wdag::graph::Digraph;
using wdag::graph::reaches;
using wdag::graph::transitive_closure;

TEST(ReachabilityTest, ChainDescendants) {
  const Digraph g = wdag::test::chain(5);
  const auto d = descendants(g, 1);
  EXPECT_FALSE(d.test(0));
  for (std::size_t v = 1; v < 5; ++v) EXPECT_TRUE(d.test(v));
}

TEST(ReachabilityTest, ChainAncestors) {
  const Digraph g = wdag::test::chain(5);
  const auto a = ancestors(g, 3);
  for (std::size_t v = 0; v <= 3; ++v) EXPECT_TRUE(a.test(v));
  EXPECT_FALSE(a.test(4));
}

TEST(ReachabilityTest, SelfIsAlwaysReachable) {
  const Digraph g = wdag::test::diamond();
  for (wdag::graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(descendants(g, v).test(v));
    EXPECT_TRUE(ancestors(g, v).test(v));
    EXPECT_TRUE(reaches(g, v, v));
  }
}

TEST(ReachabilityTest, DiamondReaches) {
  const Digraph g = wdag::test::diamond();
  EXPECT_TRUE(reaches(g, 0, 3));
  EXPECT_TRUE(reaches(g, 0, 1));
  EXPECT_FALSE(reaches(g, 1, 2));
  EXPECT_FALSE(reaches(g, 3, 0));
}

TEST(ReachabilityTest, ClosureMatchesPerVertexDfs) {
  wdag::util::Xoshiro256 rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const Digraph g = wdag::gen::random_dag(rng, 30, 0.1);
    const auto closure = transitive_closure(g);
    ASSERT_EQ(closure.size(), g.num_vertices());
    for (wdag::graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(closure[v], descendants(g, v)) << "vertex " << v;
    }
  }
}

TEST(ReachabilityTest, ClosureWorksOnNonDags) {
  const Digraph g = wdag::test::directed_triangle();
  const auto closure = transitive_closure(g);
  for (wdag::graph::VertexId u = 0; u < 3; ++u) {
    for (wdag::graph::VertexId v = 0; v < 3; ++v) {
      EXPECT_TRUE(closure[u].test(v));
    }
  }
}

TEST(ReachabilityTest, AncestorsDescendantsAreDual) {
  wdag::util::Xoshiro256 rng(29);
  const Digraph g = wdag::gen::random_dag(rng, 25, 0.12);
  for (wdag::graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto du = descendants(g, u);
    for (wdag::graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(du.test(v), ancestors(g, v).test(u));
    }
  }
}

TEST(ReachabilityTest, OutOfRangeThrows) {
  const Digraph g = wdag::test::chain(3);
  EXPECT_THROW(descendants(g, 5), wdag::InvalidArgument);
  EXPECT_THROW(reaches(g, 0, 5), wdag::InvalidArgument);
}

}  // namespace
