// Unit tests for the deterministic RNG layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using wdag::util::SplitMix64;
using wdag::util::Xoshiro256;

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) differ = a.next() != b.next();
  EXPECT_TRUE(differ);
}

TEST(Xoshiro256Test, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, BelowRespectsBound) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256Test, BelowOneAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256Test, BelowZeroThrows) {
  Xoshiro256 rng(5);
  EXPECT_THROW(rng.below(0), wdag::InvalidArgument);
}

TEST(Xoshiro256Test, BelowCoversSmallRange) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro256Test, RangeIsInclusive) {
  Xoshiro256 rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro256Test, RangeSingleton) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.range(3, 3), 3);
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // crude mean check
}

TEST(Xoshiro256Test, ChanceEdgeCases) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Xoshiro256Test, ChanceApproximatesProbability) {
  Xoshiro256 rng(21);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Xoshiro256Test, ShuffleIsPermutation) {
  Xoshiro256 rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), w.begin()));  // astronomically sure
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Xoshiro256Test, ShuffleEmptyAndSingleton) {
  Xoshiro256 rng(31);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Xoshiro256Test, IndexRequiresNonEmpty) {
  Xoshiro256 rng(31);
  EXPECT_THROW(rng.index(0), wdag::InvalidArgument);
  EXPECT_EQ(rng.index(1), 0u);
}

TEST(Xoshiro256Test, SplitProducesIndependentStream) {
  Xoshiro256 a(55);
  Xoshiro256 child = a.split();
  // The child stream should differ from the parent's continuation.
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) differ = a() != child();
  EXPECT_TRUE(differ);
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  (void)rng();
  SUCCEED();
}

}  // namespace
