// Unit tests for routing.

#include <gtest/gtest.h>

#include "gen/paper_instances.hpp"
#include "helpers.hpp"
#include "paths/route.hpp"
#include "util/check.hpp"

namespace {

using namespace wdag::paths;
using wdag::graph::Digraph;
using wdag::graph::DigraphBuilder;

TEST(UniqueRouteTest, ChainRoute) {
  const Digraph g = wdag::test::chain(5);
  const auto r = unique_route(g, 1, 4);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->arcs, (std::vector<wdag::graph::ArcId>{1, 2, 3}));
}

TEST(UniqueRouteTest, UnreachableIsNullopt) {
  const Digraph g = wdag::test::chain(4);
  EXPECT_FALSE(unique_route(g, 3, 0).has_value());
}

TEST(UniqueRouteTest, AmbiguousPairThrows) {
  const Digraph g = wdag::test::diamond();
  EXPECT_THROW(unique_route(g, 0, 3), wdag::DomainError);
}

TEST(UniqueRouteTest, UnambiguousPairInNonUppGraphWorks) {
  // The diamond is not UPP globally, but 0 -> 1 is still a unique route.
  const Digraph g = wdag::test::diamond();
  const auto r = unique_route(g, 0, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->length(), 1u);
}

TEST(UniqueRouteTest, SameEndpointsRejected) {
  const Digraph g = wdag::test::chain(3);
  EXPECT_THROW(unique_route(g, 1, 1), wdag::InvalidArgument);
}

TEST(ShortestRouteTest, PicksFewestArcs) {
  // 0 -> 1 -> 2 -> 3 and shortcut 0 -> 2.
  DigraphBuilder b(4);
  b.add_arc(0, 1);
  b.add_arc(1, 2);
  b.add_arc(2, 3);
  b.add_arc(0, 2);
  const Digraph g = b.build();
  const auto r = shortest_route(g, 0, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->length(), 2u);  // 0 -> 2 -> 3
  EXPECT_EQ(g.tail(r->arcs[0]), 0u);
  EXPECT_EQ(g.head(r->arcs[0]), 2u);
}

TEST(ShortestRouteTest, LexicographicTieBreak) {
  const Digraph g = wdag::test::diamond();
  const auto r = shortest_route(g, 0, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->length(), 2u);
  // Both 0->1->3 and 0->2->3 are shortest; the smaller first arc id wins.
  EXPECT_EQ(r->arcs[0], g.find_arc(0, 1));
}

TEST(ShortestRouteTest, UnreachableIsNullopt) {
  const Digraph g = wdag::test::chain(3);
  EXPECT_FALSE(shortest_route(g, 2, 0).has_value());
}

TEST(RouteRequestsTest, UniquePolicyOnUppGraph) {
  const auto inst = wdag::gen::havet_instance();
  const auto& g = *inst.graph;
  const auto a1 = *g.vertex_by_name("a1");
  const auto d1 = *g.vertex_by_name("d1");
  const auto fam = route_requests(g, {{a1, d1}}, RoutePolicy::kUnique);
  ASSERT_EQ(fam.size(), 1u);
  EXPECT_EQ(fam.path(0).length(), 3u);
}

TEST(RouteRequestsTest, ShortestPolicyOnAnyDag) {
  const Digraph g = wdag::test::diamond();
  const auto fam =
      route_requests(g, {{0, 3}, {0, 1}}, RoutePolicy::kShortest);
  EXPECT_EQ(fam.size(), 2u);
}

TEST(RouteRequestsTest, UnroutableThrows) {
  const Digraph g = wdag::test::chain(3);
  EXPECT_THROW(route_requests(g, {{2, 0}}, RoutePolicy::kShortest),
               wdag::InvalidArgument);
}

}  // namespace
