// Tests for the end-to-end RWA pipeline.

#include <gtest/gtest.h>

#include "conflict/coloring.hpp"
#include "core/rwa.hpp"
#include "gen/paper_instances.hpp"
#include "graph/reachability.hpp"
#include "gen/random_dag.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag::core;
using wdag::paths::Request;
using wdag::paths::RoutePolicy;

TEST(RwaTest, ChainRequests) {
  const auto g = wdag::test::chain(6);
  const std::vector<Request> reqs = {{0, 3}, {1, 4}, {2, 5}, {0, 5}};
  const auto res = solve_rwa(g, reqs, RoutePolicy::kUnique);
  ASSERT_EQ(res.routed.size(), 4u);
  EXPECT_EQ(res.assignment.strategy, kStrategyTheorem1);
  EXPECT_TRUE(res.assignment.optimal);
  // All four requests cross arc 2 -> 3: load 4, so 4 wavelengths.
  EXPECT_EQ(res.assignment.load, 4u);
  EXPECT_EQ(res.assignment.wavelengths, 4u);
  // Wavelength accessor matches the coloring.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(res.wavelength(i), res.assignment.coloring[i]);
  }
}

TEST(RwaTest, UppNetworkUniqueRouting) {
  const auto inst = wdag::gen::havet_instance();
  const auto& g = *inst.graph;
  const std::vector<Request> reqs = {
      {*g.vertex_by_name("a1"), *g.vertex_by_name("d1")},
      {*g.vertex_by_name("a2"), *g.vertex_by_name("d2")},
      {*g.vertex_by_name("a1'"), *g.vertex_by_name("d1'")},
  };
  const auto res = solve_rwa(g, reqs, RoutePolicy::kUnique);
  EXPECT_TRUE(wdag::conflict::is_valid_assignment(res.routed,
                                                  res.assignment.coloring));
}

TEST(RwaTest, ShortestRoutingOnGeneralDag) {
  wdag::util::Xoshiro256 rng(5);
  const auto g = wdag::gen::random_layered_dag(rng, 4, 3, 0.5);
  // Use actually-reachable pairs so routing cannot fail.
  std::vector<Request> reqs;
  for (wdag::graph::VertexId u = 0; u < 3 && reqs.size() < 5; ++u) {
    const auto reach = wdag::graph::descendants(g, u);
    for (wdag::graph::VertexId v = 9; v < 12; ++v) {
      if (reach.test(v)) reqs.push_back({u, v});
    }
  }
  ASSERT_FALSE(reqs.empty());
  const auto res = solve_rwa(g, reqs, RoutePolicy::kShortest);
  EXPECT_EQ(res.routed.size(), reqs.size());
  EXPECT_TRUE(wdag::conflict::is_valid_assignment(res.routed,
                                                  res.assignment.coloring));
  EXPECT_GE(res.assignment.wavelengths, res.assignment.load);
}

TEST(RwaTest, ReportMentionsKeyFigures) {
  const auto g = wdag::test::chain(4);
  const auto res = solve_rwa(g, {{0, 2}, {1, 3}}, RoutePolicy::kUnique);
  const auto report = rwa_report(res);
  EXPECT_NE(report.find("requests:    2"), std::string::npos);
  EXPECT_NE(report.find("wavelengths:"), std::string::npos);
  EXPECT_NE(report.find("lambda="), std::string::npos);
  EXPECT_NE(report.find("theorem1"), std::string::npos);
}

TEST(RwaTest, EmptyRequestList) {
  const auto g = wdag::test::chain(3);
  const auto res = solve_rwa(g, {}, RoutePolicy::kUnique);
  EXPECT_EQ(res.routed.size(), 0u);
  EXPECT_EQ(res.assignment.wavelengths, 0u);
}

}  // namespace
