// Scheduler determinism and cost-model coverage for the batch engine
// (core/batch.hpp + core/cost_model.hpp + util/work_stealing.hpp):
//
//   * stealing vs fixed produce byte-identical streamed CSV across seeds
//     {42, 4242} x threads {1, 2, 8} — the scheduler moves where work
//     runs, never what it computes;
//   * on a skewed workload no logical worker starves (every worker
//     records >= 1 chunk whenever chunks >= 2 x workers);
//   * the cost model's chunk suggestions respect their bounds and move
//     the right way (cheap observations -> coarser chunks, exact-solver
//     observations -> finer).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/sink.hpp"
#include "core/batch.hpp"
#include "core/cost_model.hpp"
#include "gen/instance.hpp"
#include "gen/workloads.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag;
using core::BatchOptions;
using core::BatchReport;
using core::CostModel;
using core::CostSample;
using core::Schedule;
using gen::Instance;
using util::Xoshiro256;

/// The shared mixed-regime stream (tests/helpers.hpp) as a generator.
Instance mixed_instance(Xoshiro256& rng, std::size_t index) {
  return test::mixed_regime_instance(rng, index);
}

/// Streams a generated batch through a CsvStreamSink and returns the bytes.
std::string batch_csv(api::Engine& engine, std::uint64_t seed,
                      Schedule schedule, std::size_t count) {
  std::ostringstream out;
  api::CsvStreamSink sink(out);
  api::BatchRequest request;
  request.generate = mixed_instance;
  request.count = count;
  request.options.seed = seed;
  request.options.chunk = 8;
  request.options.schedule = schedule;
  request.options.keep_entries = false;
  request.sinks = {&sink};
  const BatchReport report = engine.run_batch(request);
  EXPECT_EQ(report.instance_count, count);
  EXPECT_EQ(report.schedule, schedule);
  return out.str();
}

TEST(SchedulerDeterminismTest, StealingMatchesFixedByteForByte) {
  constexpr std::size_t kCount = 120;
  for (const std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{4242}}) {
    // Reference: the fixed schedule on one thread.
    api::EngineOptions ref_options;
    ref_options.threads = 1;
    api::Engine reference_engine(ref_options);
    const std::string want =
        batch_csv(reference_engine, seed, Schedule::kFixed, kCount);
    ASSERT_FALSE(want.empty());

    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      api::EngineOptions options;
      options.threads = threads;
      api::Engine engine(options);
      EXPECT_EQ(batch_csv(engine, seed, Schedule::kFixed, kCount), want)
          << "fixed seed=" << seed << " threads=" << threads;
      EXPECT_EQ(batch_csv(engine, seed, Schedule::kStealing, kCount), want)
          << "stealing seed=" << seed << " threads=" << threads;
      // A second stealing run reuses the now-trained cost model (likely a
      // different chunk size) — the bytes still cannot move.
      EXPECT_EQ(batch_csv(engine, seed, Schedule::kStealing, kCount), want)
          << "stealing(rerun) seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(SchedulerDeterminismTest, ChunkGeometryNeverChangesOutput) {
  api::EngineOptions options;
  options.threads = 2;
  api::Engine engine(options);
  std::string reference;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}}) {
    std::ostringstream out;
    api::CsvStreamSink sink(out);
    api::BatchRequest request;
    request.generate = mixed_instance;
    request.count = 90;
    request.options.seed = 777;
    request.options.chunk = chunk;
    request.sinks = {&sink};
    (void)engine.run_batch(request);
    if (reference.empty()) {
      reference = out.str();
    } else {
      EXPECT_EQ(out.str(), reference) << "chunk=" << chunk;
    }
  }
}

TEST(SchedulerStarvationTest, AllWorkersRecordChunksOnSkewedWorkload) {
  // A deliberately skewed mix: every 8th instance is a dense random DAG
  // (DSATUR + exact certification territory), the rest are tiny trees.
  const auto skewed = [](Xoshiro256& rng, std::size_t index) {
    gen::WorkloadParams params;
    if (index % 8 == 0) {
      params.size = 28;
      params.density = 0.3;
      params.paths = 28;
      return gen::workload_instance("random-dag", params, rng);
    }
    params.size = 12;
    params.paths = 8;
    return gen::workload_instance("tree", params, rng);
  };

  api::EngineOptions options;
  options.threads = 4;
  api::Engine engine(options);

  api::BatchRequest request;
  request.generate = skewed;
  request.count = 96;
  request.options.seed = 4242;
  request.options.schedule = Schedule::kStealing;
  // Pin the cost-aware size so the chunk count (96 / 4 = 24 >= 2 x 4
  // workers) is known to the assertion below.
  request.options.min_chunk = 4;
  request.options.max_chunk = 4;
  const BatchReport report = engine.run_batch(request);

  EXPECT_EQ(report.failure_count, 0u);
  EXPECT_EQ(report.chunk_size, 4u);
  ASSERT_EQ(report.worker_chunks.size(), 4u);
  std::size_t total_chunks = 0;
  for (std::size_t w = 0; w < report.worker_chunks.size(); ++w) {
    EXPECT_GE(report.worker_chunks[w], 1u) << "worker " << w << " starved";
    total_chunks += report.worker_chunks[w];
  }
  EXPECT_EQ(total_chunks, 24u);
}

TEST(SchedulerReportTest, FixedScheduleReportsItsGeometry) {
  BatchOptions options;
  options.threads = 2;
  options.chunk = 16;
  const BatchReport report =
      core::solve_generated_batch(64, mixed_instance, {}, options);
  EXPECT_EQ(report.schedule, Schedule::kFixed);
  EXPECT_EQ(report.chunk_size, 16u);
  EXPECT_EQ(report.worker_chunks.size(), report.threads_used);
  std::size_t total = 0;
  for (const std::size_t w : report.worker_chunks) total += w;
  EXPECT_EQ(total, 4u);  // 64 instances / chunk 16
  // The report JSON carries the scheduler provenance.
  EXPECT_NE(report.to_json().find("\"schedule\":\"fixed\""),
            std::string::npos);
}

TEST(SchedulerOptionsTest, RejectsInvertedChunkBounds) {
  BatchOptions options;
  options.min_chunk = 8;
  options.max_chunk = 4;
  EXPECT_THROW(core::solve_generated_batch(16, mixed_instance, {}, options),
               wdag::InvalidArgument);
}

TEST(SchedulerBackpressureTest, BoundedReorderWindowStaysCorrectBehindAStraggler) {
  // 600 one-instance chunks, instance 0 sleeping long enough for the
  // other workers to race past the 256-chunk reorder window: the
  // dispatcher must backpressure (bounded memory) and still emit every
  // row in order. A deadlock here shows up as a test timeout.
  const core::BatchItemSolver item =
      [](util::Xoshiro256&, std::size_t i, core::BatchEntry& entry,
         core::SolveScratch&) {
        if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
        entry.strategy = core::kStrategyTheorem1;
        entry.paths = i;
      };
  std::ostringstream out;
  api::CsvStreamSink sink(out);
  api::ResultSink* sinks[] = {&sink};
  BatchOptions options;
  options.threads = 4;
  options.schedule = Schedule::kStealing;
  options.min_chunk = 1;
  options.max_chunk = 1;
  options.keep_entries = false;
  const core::BatchReport report = core::run_batch_items(
      600, item, options, core::builtin_strategy_names(), sinks);
  EXPECT_EQ(report.instance_count, 600u);
  // Rows arrived strictly in instance order despite the straggler.
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));  // header
  for (std::size_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(std::getline(lines, line)) << i;
    EXPECT_EQ(line.substr(0, line.find(',')), std::to_string(i));
  }
}

TEST(SchedulerBackpressureTest, ThrowingSinkFailsTheBatchInsteadOfDeadlocking) {
  // A sink that dies mid-stream poisons the bounded reorder window: the
  // batch must surface the error (after letting the remaining chunks
  // run), not block the other submitters forever behind the chunk whose
  // delivery never completed. A regression here shows up as a timeout.
  class ExplodingSink final : public api::ResultSink {
   public:
    void row(const core::BatchEntry& entry) override {
      if (entry.index == 5) throw std::runtime_error("disk full");
    }
  };
  ExplodingSink sink;
  api::ResultSink* sinks[] = {&sink};
  const core::BatchItemSolver item =
      [](util::Xoshiro256&, std::size_t, core::BatchEntry& entry,
         core::SolveScratch&) { entry.strategy = core::kStrategyTheorem1; };
  BatchOptions options;
  options.threads = 4;
  options.schedule = Schedule::kStealing;
  options.min_chunk = 1;
  options.max_chunk = 1;
  options.keep_entries = false;
  EXPECT_THROW(core::run_batch_items(600, item, options,
                                     core::builtin_strategy_names(), sinks),
               std::runtime_error);
}

TEST(LatencyPercentileTest, NearestRankValuesAreExact) {
  // Inject a known latency sample through the driver's item callback
  // (millis is whatever the item wrote): (i * 37) mod 1000 is a
  // permutation of 0..999, shifted to 1..1000. Nearest-rank percentiles
  // of 1..1000 are exact: p50 = 500, p90 = 900, p99 = 990, max = 1000.
  const core::BatchItemSolver item =
      [](util::Xoshiro256&, std::size_t i, core::BatchEntry& entry,
         core::SolveScratch&) {
        entry.strategy = core::kStrategyTheorem1;
        entry.millis = static_cast<double>((i * 37) % 1000 + 1);
      };
  BatchOptions options;
  options.threads = 2;
  const core::BatchReport report = core::run_batch_items(
      1000, item, options, core::builtin_strategy_names());
  EXPECT_DOUBLE_EQ(report.latency.p50, 500.0);
  EXPECT_DOUBLE_EQ(report.latency.p90, 900.0);
  EXPECT_DOUBLE_EQ(report.latency.p99, 990.0);
  EXPECT_DOUBLE_EQ(report.latency.max, 1000.0);
  EXPECT_DOUBLE_EQ(report.latency.mean, 500.5);

  // Same sample through the streaming (keep_entries = false) path.
  BatchOptions streaming = options;
  streaming.keep_entries = false;
  const core::BatchReport lean = core::run_batch_items(
      1000, item, streaming, core::builtin_strategy_names());
  EXPECT_DOUBLE_EQ(lean.latency.p50, 500.0);
  EXPECT_DOUBLE_EQ(lean.latency.p90, 900.0);
  EXPECT_DOUBLE_EQ(lean.latency.p99, 990.0);
  EXPECT_DOUBLE_EQ(lean.latency.max, 1000.0);
}

TEST(CostModelTest, SuggestChunkRespectsBounds) {
  const CostModel model;
  for (std::size_t count : {std::size_t{10}, std::size_t{1000},
                            std::size_t{100000}}) {
    const std::size_t chunk = model.suggest_chunk(count, 4, 10, 16);
    EXPECT_GE(chunk, 10u) << count;
    EXPECT_LE(chunk, 16u) << count;
  }
}

TEST(CostModelTest, CheapWorkBatchesCoarseExpensiveWorkSplitsFine) {
  CostModel cheap;
  CostModel expensive;
  std::vector<CostSample> cheap_samples(200,
                                        {core::kStrategyTheorem1, 32, 5.0});
  std::vector<CostSample> costly_samples(200,
                                         {core::kStrategyExact, 32, 5000.0});
  cheap.observe(cheap_samples);
  expensive.observe(costly_samples);

  EXPECT_LT(cheap.expected_micros(), expensive.expected_micros());
  const std::size_t coarse = cheap.suggest_chunk(100000, 4, 1, 4096);
  const std::size_t fine = expensive.suggest_chunk(100000, 4, 1, 4096);
  EXPECT_GT(coarse, fine);
  EXPECT_EQ(fine, 1u);  // 5ms instances: one straggler per chunk
  // Coarse chunks still leave ~8 chunks per worker to steal.
  EXPECT_LE(coarse, 100000u / (8 * 4));
}

TEST(CostModelTest, StragglerGuardSplitsFineEvenWhenCheapWorkDominates) {
  // Cheap observations across three strategies drag the mean down, but
  // two observed ~12ms exact solves are enough for the guard: a chunk
  // must never hold more than ~8ms of worst-case (all-straggler) work.
  CostModel model;
  for (const core::StrategyId s : {core::kStrategyTheorem1,
                                   core::kStrategySplitMerge,
                                   core::kStrategyDsatur}) {
    std::vector<CostSample> cheap(200, {s, 32, 5.0});
    model.observe(cheap);
  }
  std::vector<CostSample> heavy(2, {core::kStrategyExact, 32, 12000.0});
  model.observe(heavy);
  EXPECT_LT(model.expected_micros(), 500.0);  // mean alone would batch coarse
  EXPECT_EQ(model.suggest_chunk(100000, 4, 1, 4096), 1u);
}

TEST(CostModelTest, EstimatesTrackObservationsPerStrategy) {
  CostModel model;
  std::vector<CostSample> samples(64, {core::kStrategyDsatur, 32, 250.0});
  model.observe(samples);
  EXPECT_NEAR(model.estimate_micros(core::kStrategyDsatur, 32), 250.0, 60.0);
  // A nearby size bucket falls back to the nearest observed one.
  EXPECT_NEAR(model.estimate_micros(core::kStrategyDsatur, 64), 250.0, 60.0);
  // User-registered strategies past the built-ins are accepted.
  std::vector<CostSample> custom(8, {CostSample{7, 16, 90.0}});
  model.observe(custom);
  EXPECT_NEAR(model.estimate_micros(7, 16), 90.0, 30.0);
}

}  // namespace
