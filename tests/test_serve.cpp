// The serve subsystem: wire protocol round trips, bounded admission,
// deadline handling, the live server end to end over loopback TCP, and
// the SIGPIPE / vanished-client regression.
//
// Timing-sensitive behaviors (queue_full, deadline expiry during queue
// wait) are pinned with the "sleep" test hook — a request that occupies
// the single worker for a chosen time — so the tests are deterministic
// instead of racing real solve latencies.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "serve/admission.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"
#include "util/check.hpp"
#include "util/socket.hpp"

namespace wdag {
namespace {

using serve::AdmissionQueue;
using serve::Job;
using serve::RequestKind;
using serve::WireReply;
using serve::WireRequest;

// --- protocol --------------------------------------------------------------

TEST(ServeProtocol, SolveRequestRoundTrips) {
  WireRequest request;
  request.kind = RequestKind::kSolve;
  request.id = "r1";
  request.gen.family = "random-upp";
  request.gen.seed = 42;
  request.gen.params.paths = 16;
  request.gen.params.k = 5;
  request.force = "dsatur";
  core::SolveOptions solve;
  solve.exact_threshold = 12;
  solve.exact_node_budget = 1000;
  request.solve = solve;
  request.deadline_ms = 250.5;

  const WireRequest parsed = serve::parse_request(serve::request_to_json(request));
  EXPECT_EQ(parsed.kind, RequestKind::kSolve);
  EXPECT_EQ(parsed.id, "r1");
  EXPECT_EQ(parsed.gen.family, "random-upp");
  EXPECT_EQ(parsed.gen.seed, 42u);
  EXPECT_EQ(parsed.gen.params.paths, 16u);
  EXPECT_EQ(parsed.gen.params.k, 5u);
  ASSERT_TRUE(parsed.force.has_value());
  EXPECT_EQ(*parsed.force, "dsatur");
  ASSERT_TRUE(parsed.solve.has_value());
  EXPECT_EQ(parsed.solve->exact_threshold, 12u);
  EXPECT_EQ(parsed.solve->exact_node_budget, 1000u);
  EXPECT_DOUBLE_EQ(parsed.deadline_ms, 250.5);
  // Default knobs are not spelled out on the wire.
  EXPECT_EQ(serve::request_to_json(request).find("\"size\""), std::string::npos);
}

TEST(ServeProtocol, BatchRequestRoundTrips) {
  WireRequest request;
  request.kind = RequestKind::kBatch;
  request.gen.family = "tree";
  request.gen.seed = 7;
  request.count = 250;
  const WireRequest parsed = serve::parse_request(serve::request_to_json(request));
  EXPECT_EQ(parsed.kind, RequestKind::kBatch);
  EXPECT_EQ(parsed.count, 250u);
  EXPECT_EQ(parsed.gen.family, "tree");
  EXPECT_FALSE(parsed.solve.has_value());
  EXPECT_FALSE(parsed.force.has_value());
}

TEST(ServeProtocol, RejectsUnknownKeysAndTypes) {
  EXPECT_THROW(serve::parse_request(R"({"type":"solve","gen":"tree","typo":1})"),
               InvalidArgument);
  EXPECT_THROW(serve::parse_request(R"({"type":"evaluate","gen":"tree"})"),
               InvalidArgument);
  EXPECT_THROW(serve::parse_request(R"({"gen":"tree"})"), InvalidArgument);
  // 'count' belongs to batch requests alone.
  EXPECT_THROW(serve::parse_request(R"({"type":"solve","gen":"tree","count":4})"),
               InvalidArgument);
  // A solve/batch request needs its workload.
  EXPECT_THROW(serve::parse_request(R"({"type":"solve"})"), InvalidArgument);
  EXPECT_THROW(serve::parse_request("not json"), InvalidArgument);
  // Negative sizes must not wrap through the unsigned parse.
  EXPECT_THROW(serve::parse_request(R"({"type":"solve","gen":"tree","paths":-4})"),
               InvalidArgument);
}

TEST(ServeProtocol, StatsRequestRejectsWorkloadKeys) {
  const WireRequest parsed = serve::parse_request(R"({"type":"stats"})");
  EXPECT_EQ(parsed.kind, RequestKind::kStats);
  EXPECT_THROW(serve::parse_request(R"({"type":"stats","gen":"tree"})"),
               InvalidArgument);
}

TEST(ServeProtocol, ReplyStatusesParse) {
  const WireReply rejected =
      serve::parse_reply(serve::rejected_response_json("x", "queue_full"));
  EXPECT_EQ(rejected.status, "rejected");
  EXPECT_EQ(rejected.detail, "queue_full");
  const WireReply error =
      serve::parse_reply(serve::error_response_json("", "boom \"quoted\""));
  EXPECT_EQ(error.status, "error");
  EXPECT_EQ(error.detail, "boom \"quoted\"");
}

// --- admission queue -------------------------------------------------------

Job make_job(std::string id) {
  Job job;
  job.request.kind = RequestKind::kSolve;
  job.request.id = std::move(id);
  job.request.gen.family = "tree";
  job.enqueued_at = std::chrono::steady_clock::now();
  return job;
}

TEST(AdmissionQueueTest, BoundedPushAndFifoPop) {
  AdmissionQueue queue(2);
  EXPECT_TRUE(queue.try_push(make_job("a")));
  EXPECT_TRUE(queue.try_push(make_job("b")));
  // Full: the third admission fails immediately, nothing blocks.
  EXPECT_FALSE(queue.try_push(make_job("c")));
  EXPECT_EQ(queue.depth(), 2u);

  auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request.id, "a");
  EXPECT_TRUE(queue.try_push(make_job("d")));
  auto second = queue.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->request.id, "b");
}

TEST(AdmissionQueueTest, CloseDrainsThenSignalsExit) {
  AdmissionQueue queue(4);
  EXPECT_TRUE(queue.try_push(make_job("a")));
  queue.close();
  EXPECT_TRUE(queue.is_closed());
  EXPECT_FALSE(queue.try_push(make_job("late")));
  EXPECT_TRUE(queue.pop().has_value());   // the backlog drains...
  EXPECT_FALSE(queue.pop().has_value());  // ...then pop says stop
}

TEST(AdmissionQueueTest, CloseReleasesBlockedConsumer) {
  AdmissionQueue queue(1);
  std::thread consumer([&queue] { EXPECT_FALSE(queue.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
}

// --- service_job -----------------------------------------------------------

TEST(ServiceJob, ExpiredDeadlineRejectsWithoutSolving) {
  api::Engine engine(api::EngineOptions{1, {}});
  serve::ServeStats stats;
  Job job = make_job("late");
  job.has_deadline = true;
  job.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const std::string response = serve::service_job(engine, job, stats, false);
  const WireReply reply = serve::parse_reply(response);
  EXPECT_EQ(reply.status, "rejected");
  EXPECT_EQ(reply.detail, "deadline");
  EXPECT_EQ(stats.rejected_deadline(), 1u);
  EXPECT_EQ(stats.solved(), 0u);
}

TEST(ServiceJob, SolveMatchesDirectEngineSubmit) {
  api::Engine engine(api::EngineOptions{1, {}});
  serve::ServeStats stats;
  Job job = make_job("s");
  job.request.gen.family = "random-upp";
  job.request.gen.seed = 11;
  const std::string response = serve::service_job(engine, job, stats, false);

  api::SolveRequest direct;
  direct.generator = job.request.gen;
  const api::SolveResponse expected = engine.submit(direct);
  // Everything but the latency fields must match the direct submit.
  const std::string expected_json = serve::solve_response_json("s", expected);
  EXPECT_EQ(response.substr(0, response.find("\"millis\"")),
            expected_json.substr(0, expected_json.find("\"millis\"")));
  EXPECT_EQ(stats.solved(), 1u);
}

TEST(ServiceJob, SleepNeedsTestHooks) {
  api::Engine engine(api::EngineOptions{1, {}});
  serve::ServeStats stats;
  Job job;
  job.request.kind = RequestKind::kSleep;
  job.request.sleep_ms = 1;
  EXPECT_EQ(serve::parse_reply(serve::service_job(engine, job, stats, false))
                .status,
            "error");
  EXPECT_EQ(serve::parse_reply(serve::service_job(engine, job, stats, true))
                .status,
            "ok");
}

// --- the live server -------------------------------------------------------

serve::ServeOptions test_options(std::size_t queue_capacity = 8,
                                 bool test_hooks = true) {
  serve::ServeOptions options;
  options.port = 0;  // ephemeral
  options.queue_capacity = queue_capacity;
  options.engine_threads = 1;
  options.enable_test_hooks = test_hooks;
  return options;
}

TEST(ServeServer, SolvesOverLoopbackAndMatchesLocalEngine) {
  serve::Server server(test_options());
  server.start();

  WireRequest request;
  request.id = "net";
  request.gen.family = "random-upp";
  request.gen.seed = 33;
  const std::string response = serve::request_once(
      "127.0.0.1", server.port(), serve::request_to_json(request));
  EXPECT_EQ(serve::parse_reply(response).status, "ok");

  api::Engine local(api::EngineOptions{1, {}});
  api::SolveRequest direct;
  direct.generator = request.gen;
  const std::string expected =
      serve::solve_response_json("net", local.submit(direct));
  EXPECT_EQ(response.substr(0, response.find("\"millis\"")),
            expected.substr(0, expected.find("\"millis\"")));

  server.request_stop();
  server.join();
}

TEST(ServeServer, OneConnectionManyRequests) {
  serve::Server server(test_options());
  server.start();
  serve::Session session("127.0.0.1", server.port());
  for (int i = 0; i < 5; ++i) {
    WireRequest request;
    request.gen.family = "tree";
    request.gen.seed = static_cast<std::uint64_t>(i + 1);
    EXPECT_EQ(serve::parse_reply(
                  session.exchange(serve::request_to_json(request)))
                  .status,
              "ok");
  }
  server.request_stop();
  server.join();
  EXPECT_EQ(server.stats().solved(), 5u);
}

TEST(ServeServer, StatsEndpointReportsCountersWhileBusy) {
  serve::Server server(test_options());
  server.start();

  // One served solve populates the dispatch histogram and latency ring.
  WireRequest solve;
  solve.gen.family = "random-upp";
  solve.gen.seed = 3;
  ASSERT_EQ(serve::parse_reply(
                serve::request_once("127.0.0.1", server.port(),
                                    serve::request_to_json(solve)))
                .status,
            "ok");

  // Occupy the worker, then ask for stats on a second connection — the
  // stats path answers out-of-band, so it must respond while the worker
  // sleeps.
  serve::Session busy("127.0.0.1", server.port());
  std::future<std::string> sleeping = std::async(std::launch::async, [&] {
    return busy.exchange(R"({"type":"sleep","millis":300})", 10000);
  });
  for (int tries = 0; tries < 200; ++tries) {
    if (server.stats().dequeued() >= 2) break;  // the sleep is in service
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::string stats = serve::request_once(
      "127.0.0.1", server.port(), R"({"type":"stats"})", /*timeout_ms=*/2000);
  EXPECT_EQ(serve::parse_reply(stats).status, "ok");
  EXPECT_NE(stats.find("\"version\""), std::string::npos);
  EXPECT_NE(stats.find("\"queue-capacity\":8"), std::string::npos);
  EXPECT_NE(stats.find("\"solved\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"strategies\":{"), std::string::npos);
  EXPECT_NE(stats.find("\"p99\""), std::string::npos);
  EXPECT_EQ(serve::parse_reply(sleeping.get()).status, "ok");
  server.request_stop();
  server.join();
}

TEST(ServeServer, QueueFullRejectsImmediately) {
  // Capacity 1: one sleeping job occupies the worker, one fills the
  // queue, the next solve must bounce with queue_full at once.
  serve::Server server(test_options(/*queue_capacity=*/1));
  server.start();

  serve::Session sleeper("127.0.0.1", server.port());
  std::future<std::string> sleeping = std::async(std::launch::async, [&] {
    return sleeper.exchange(R"({"type":"sleep","millis":600})", 10000);
  });
  // Wait until the sleeper occupies the worker (its job LEFT the queue —
  // otherwise the filler below would bounce off the still-full queue).
  for (int tries = 0; tries < 200; ++tries) {
    if (server.stats().dequeued() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server.stats().dequeued(), 1u);
  serve::Session filler("127.0.0.1", server.port());
  std::future<std::string> filling = std::async(std::launch::async, [&] {
    return filler.exchange(R"({"type":"sleep","millis":1})", 10000);
  });
  // Wait until the filler's job sits admitted in the queue.
  for (int tries = 0; tries < 200; ++tries) {
    if (server.stats().admitted() >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server.stats().admitted(), 2u);

  WireRequest solve;
  solve.gen.family = "tree";
  const std::string response = serve::request_once(
      "127.0.0.1", server.port(), serve::request_to_json(solve));
  const WireReply reply = serve::parse_reply(response);
  EXPECT_EQ(reply.status, "rejected");
  EXPECT_EQ(reply.detail, "queue_full");
  EXPECT_GE(server.stats().rejected_queue_full(), 1u);

  EXPECT_EQ(serve::parse_reply(sleeping.get()).status, "ok");
  EXPECT_EQ(serve::parse_reply(filling.get()).status, "ok");
  server.request_stop();
  server.join();
}

TEST(ServeServer, DeadlineExpiredInQueueRejectsWithoutSolving) {
  serve::Server server(test_options(/*queue_capacity=*/4));
  server.start();

  // The sleeper occupies the worker for 400ms; a 50ms-deadline solve
  // admitted behind it MUST age out in the queue and be rejected.
  serve::Session sleeper("127.0.0.1", server.port());
  std::future<std::string> sleeping = std::async(std::launch::async, [&] {
    return sleeper.exchange(R"({"type":"sleep","millis":400})", 10000);
  });
  for (int tries = 0; tries < 200; ++tries) {
    if (server.stats().dequeued() >= 1) break;  // worker holds the sleep
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server.stats().dequeued(), 1u);

  WireRequest solve;
  solve.id = "doomed";
  solve.gen.family = "tree";
  solve.deadline_ms = 50;
  const std::string response = serve::request_once(
      "127.0.0.1", server.port(), serve::request_to_json(solve));
  const WireReply reply = serve::parse_reply(response);
  EXPECT_EQ(reply.status, "rejected");
  EXPECT_EQ(reply.detail, "deadline");
  EXPECT_EQ(server.stats().rejected_deadline(), 1u);
  EXPECT_EQ(server.stats().solved(), 0u);

  EXPECT_EQ(serve::parse_reply(sleeping.get()).status, "ok");
  server.request_stop();
  server.join();
}

TEST(ServeServer, GracefulStopDrainsAdmittedWork) {
  serve::Server server(test_options(/*queue_capacity=*/8));
  server.start();

  serve::Session sleeper("127.0.0.1", server.port());
  std::future<std::string> sleeping = std::async(std::launch::async, [&] {
    return sleeper.exchange(R"({"type":"sleep","millis":200})", 10000);
  });
  serve::Session queued("127.0.0.1", server.port());
  std::future<std::string> waiting = std::async(std::launch::async, [&] {
    WireRequest solve;
    solve.id = "drainme";
    solve.gen.family = "tree";
    return queued.exchange(serve::request_to_json(solve), 10000);
  });
  for (int tries = 0; tries < 200; ++tries) {
    if (server.stats().admitted() >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server.stats().admitted(), 2u);

  // Stop mid-sleep: both the in-flight sleep and the admitted solve
  // must still be answered (drain), not dropped.
  server.request_stop();
  EXPECT_EQ(serve::parse_reply(sleeping.get()).status, "ok");
  EXPECT_EQ(serve::parse_reply(waiting.get()).status, "ok");
  server.join();
  EXPECT_EQ(server.stats().solved(), 1u);
}

TEST(ServeServer, ClientVanishingMidResponseDoesNotKillServer) {
  // The SIGPIPE regression: a client that sends a request and closes
  // without reading the response makes the server write into a dead
  // socket. With SIGPIPE ignored this is a failed write; the server
  // must keep serving other clients.
  util::ignore_sigpipe();
  serve::Server server(test_options());
  server.start();

  {
    util::TcpConn ghost = util::TcpConn::connect(
        "127.0.0.1", server.port());
    WireRequest solve;
    solve.gen.family = "random-upp";
    solve.gen.seed = 5;
    ASSERT_TRUE(ghost.write_line(serve::request_to_json(solve)));
    ghost.close();  // gone before the response is written
  }

  // The server survives and still answers.
  for (int tries = 0; tries < 100; ++tries) {
    if (server.stats().solved() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  WireRequest solve;
  solve.gen.family = "tree";
  EXPECT_EQ(serve::parse_reply(
                serve::request_once("127.0.0.1", server.port(),
                                    serve::request_to_json(solve)))
                .status,
            "ok");
  server.request_stop();
  server.join();
}

TEST(ServeServer, MaxConnectionsRejectsAtTheCapAndFreesWithTheSession) {
  serve::ServeOptions options = test_options();
  options.max_connections = 1;
  serve::Server server(options);
  server.start();

  WireRequest solve;
  solve.gen.family = "tree";
  {
    serve::Session holder("127.0.0.1", server.port());
    // One exchange proves the holder's session is live (the cap gauge
    // bumps at accept, which may lag the client-side handshake).
    ASSERT_EQ(
        serve::parse_reply(holder.exchange(serve::request_to_json(solve)))
            .status,
        "ok");

    // At the cap: the next connection is answered one clear rejection
    // line and closed — without the server reading a request first.
    util::TcpConn extra =
        util::TcpConn::connect("127.0.0.1", server.port(), 1000);
    std::string line;
    ASSERT_EQ(extra.read_line(line, 2000), util::ReadStatus::kLine);
    const WireReply reply = serve::parse_reply(line);
    EXPECT_EQ(reply.status, "rejected");
    EXPECT_EQ(reply.detail, "max_connections");
    EXPECT_GE(server.stats().rejected_max_connections(), 1u);
  }  // holder hangs up: its session exits and frees the slot

  // The slot comes back once the reaped session's guard runs (within a
  // read tick); a fresh connection must then be admitted again.
  std::string status;
  for (int tries = 0; tries < 100 && status != "ok"; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::string response = serve::request_once(
        "127.0.0.1", server.port(), serve::request_to_json(solve));
    status = serve::parse_reply(response).status;
  }
  EXPECT_EQ(status, "ok");
  server.request_stop();
  server.join();
}

TEST(ServeServer, IdleSessionIsClosedAfterTheTimeout) {
  serve::ServeOptions options = test_options();
  options.idle_timeout_ms = 100.0;
  serve::Server server(options);
  server.start();

  // A connection that never sends a complete line is reaped (the check
  // runs on the server's read tick, so allow a generous margin).
  util::TcpConn silent =
      util::TcpConn::connect("127.0.0.1", server.port(), 1000);
  std::string line;
  EXPECT_EQ(silent.read_line(line, 5000), util::ReadStatus::kClosed);

  // The server itself is alive and still serves talkative clients.
  WireRequest solve;
  solve.gen.family = "tree";
  EXPECT_EQ(serve::parse_reply(
                serve::request_once("127.0.0.1", server.port(),
                                    serve::request_to_json(solve)))
                .status,
            "ok");
  server.request_stop();
  server.join();
}

TEST(ServeServer, MalformedRequestAnswersErrorAndKeepsSession) {
  serve::Server server(test_options());
  server.start();
  serve::Session session("127.0.0.1", server.port());
  EXPECT_EQ(serve::parse_reply(session.exchange("this is not json")).status,
            "error");
  // Same connection still serves well-formed requests.
  WireRequest solve;
  solve.gen.family = "tree";
  EXPECT_EQ(
      serve::parse_reply(session.exchange(serve::request_to_json(solve)))
          .status,
      "ok");
  EXPECT_GE(server.stats().errors(), 1u);
  server.request_stop();
  server.join();
}

}  // namespace
}  // namespace wdag
