// Sharded batch execution (core/shard.hpp + api::Engine::run_shard):
// deterministic plan ranges, manifest JSON round-trips, the byte-identical
// plan -> run xK -> merge pipeline across shard counts and thread counts,
// and — most importantly — the merge validation error paths: shards from
// different plans, missing/duplicate shards, overlapping or gapped index
// ranges, and truncated shard files must all fail with a clear diagnostic
// instead of producing a silent partial merge.

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "wdag/wdag.hpp"

namespace {

using namespace wdag;

constexpr std::size_t kCount = 60;
constexpr std::uint64_t kSeed = 4242;

/// The workload every pipeline test in this file shards.
ShardSpec test_spec() {
  ShardSpec spec;
  spec.family = "random-upp";
  spec.count = kCount;
  spec.seed = kSeed;
  return spec;
}

/// The unsharded reference: one engine, one CsvStreamSink, full range.
std::string unsharded_csv(std::size_t threads) {
  EngineOptions options;
  options.threads = threads;
  Engine engine(options);
  std::ostringstream os;
  CsvStreamSink sink(os);
  BatchRequest request = BatchRequest::generated("random-upp", kCount);
  request.options.seed = kSeed;
  request.options.chunk = 4;
  request.options.keep_entries = false;
  request.sinks = {&sink};
  (void)engine.run_batch(request);
  return os.str();
}

/// One shard executed through Engine::run_shard into shard-CSV text (the
/// manifest header line + column header + this shard's rows).
std::string shard_csv_text(const ShardPlan& plan, std::size_t shard,
                           std::size_t threads, core::Schedule schedule) {
  EngineOptions options;
  options.threads = threads;
  Engine engine(options);
  std::ostringstream os;
  os << core::shard_csv_header(plan.manifest(shard));
  CsvStreamSink sink(os);
  BatchRequest request =
      BatchRequest::generated(plan.spec().family, plan.spec().count,
                              plan.spec().params);
  request.options.seed = plan.spec().seed;
  request.options.chunk = 4;
  request.options.schedule = schedule;
  request.options.keep_entries = false;
  request.sinks = {&sink};
  (void)engine.run_shard(request, shard, plan.shards());
  return os.str();
}

core::ShardCsv parse_shard(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  return core::read_shard_csv(in, name);
}

/// A well-formed shard CSV for an arbitrary (possibly tampered) manifest:
/// header + column header + one synthetic row per covered index.
std::string fabricated_shard_text(const ShardManifest& manifest) {
  std::string text = core::shard_csv_header(manifest);
  text += "index,method,paths,load,wavelengths,optimal\n";
  for (std::size_t i = manifest.range.begin; i < manifest.range.end; ++i) {
    text += std::to_string(i) + ",theorem1,1,1,1,1\n";
  }
  return text;
}

// ---------------------------------------------------------------------------
// Plan arithmetic
// ---------------------------------------------------------------------------

TEST(ShardPlanTest, RangesAreContiguousBalancedAndComplete) {
  for (const std::size_t count : {1u, 5u, 60u, 61u, 64u}) {
    for (std::size_t shards = 1; shards <= std::min<std::size_t>(count, 7);
         ++shards) {
      std::size_t expected_begin = 0;
      std::size_t min_size = count, max_size = 0;
      for (std::size_t i = 0; i < shards; ++i) {
        const core::ShardRange r = core::shard_range(count, shards, i);
        EXPECT_EQ(r.begin, expected_begin) << count << "/" << shards;
        EXPECT_GE(r.size(), 1u);
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
        expected_begin = r.end;
      }
      EXPECT_EQ(expected_begin, count);
      EXPECT_LE(max_size - min_size, 1u) << "unbalanced split";
    }
  }
}

TEST(ShardPlanTest, RejectsInvalidShardCounts) {
  EXPECT_THROW((void)core::shard_range(10, 0, 0), InvalidArgument);
  EXPECT_THROW((void)core::shard_range(10, 2, 2), InvalidArgument);
  // More shards than instances would create empty shards, which a merge
  // could not tell apart from missing ones.
  EXPECT_THROW(ShardPlan(test_spec(), kCount + 1), InvalidArgument);
  EXPECT_THROW(ShardPlan(test_spec(), 0), InvalidArgument);
}

TEST(ShardPlanTest, PlanIdIsAFunctionOfTheRequest) {
  const ShardPlan a(test_spec(), 5);
  const ShardPlan b(test_spec(), 5);
  EXPECT_EQ(a.id(), b.id());  // independently computed, no coordination

  ShardSpec other = test_spec();
  other.seed = kSeed + 1;
  EXPECT_NE(ShardPlan(other, 5).id(), a.id());
  EXPECT_NE(ShardPlan(test_spec(), 4).id(), a.id());

  // Execution knobs are deliberately NOT part of the identity: they never
  // change bytes, so shards may pick their own.
  EXPECT_EQ(core::shard_request_hash(test_spec()), a.request_hash());
}

// ---------------------------------------------------------------------------
// Manifest JSON
// ---------------------------------------------------------------------------

TEST(ShardManifestTest, JsonRoundTripPreservesEveryField) {
  ShardSpec spec = test_spec();
  spec.params.density = 0.3;
  spec.params.paths = 17;
  spec.solve.exact_threshold = 32;
  spec.force_strategy = "dsatur";
  const ShardPlan plan(spec, 4);
  const ShardManifest m = plan.manifest(2);

  const ShardManifest parsed = core::parse_manifest(core::manifest_to_json(m));
  EXPECT_EQ(parsed.version, m.version);
  EXPECT_EQ(parsed.plan_id, m.plan_id);
  EXPECT_EQ(parsed.request_hash, m.request_hash);
  EXPECT_EQ(parsed.shard, m.shard);
  EXPECT_EQ(parsed.shards, m.shards);
  EXPECT_EQ(parsed.range, m.range);
  EXPECT_EQ(parsed.spec.family, m.spec.family);
  EXPECT_EQ(parsed.spec.count, m.spec.count);
  EXPECT_EQ(parsed.spec.seed, m.spec.seed);
  EXPECT_EQ(parsed.spec.params.density, m.spec.params.density);
  EXPECT_EQ(parsed.spec.params.paths, m.spec.params.paths);
  EXPECT_EQ(parsed.spec.solve.exact_threshold, m.spec.solve.exact_threshold);
  EXPECT_EQ(parsed.spec.force_strategy, m.spec.force_strategy);
}

TEST(ShardManifestTest, RejectsEditedManifests) {
  const ShardPlan plan(test_spec(), 3);
  std::string json = core::manifest_to_json(plan.manifest(0));

  // A changed seed with a stale hash must NOT parse: it would generate
  // different instances under the same plan id and merge silently.
  const std::string seed_field = "\"seed\":" + std::to_string(kSeed);
  const std::size_t at = json.find(seed_field);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, seed_field.size(),
               "\"seed\":" + std::to_string(kSeed + 1));
  try {
    (void)core::parse_manifest(json);
    FAIL() << "edited manifest parsed";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("request hash"), std::string::npos)
        << e.what();
  }
}

TEST(ShardManifestTest, RejectsUnsupportedVersionsAndGarbage) {
  const ShardPlan plan(test_spec(), 2);
  std::string json = core::manifest_to_json(plan.manifest(0));
  const std::size_t at = json.find("\"wdag_shard\":1");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, 14, "\"wdag_shard\":2");
  EXPECT_THROW((void)core::parse_manifest(json), InvalidArgument);

  EXPECT_THROW((void)core::parse_manifest("not json"), InvalidArgument);
  EXPECT_THROW((void)core::parse_manifest("{\"wdag_shard\":1}"),
               InvalidArgument);
  EXPECT_THROW((void)core::parse_manifest(""), InvalidArgument);
}

// ---------------------------------------------------------------------------
// The pipeline: plan -> run xK -> merge == unsharded bytes
// ---------------------------------------------------------------------------

TEST(ShardMergeTest, MergedBytesMatchUnshardedAcrossShardAndThreadCounts) {
  const std::string reference = unsharded_csv(1);
  ASSERT_EQ(reference, unsharded_csv(4)) << "unsharded run not thread-stable";

  for (const std::size_t shards : {1u, 2u, 5u}) {
    for (const std::size_t threads : {1u, 4u}) {
      const ShardPlan plan(test_spec(), shards);
      std::vector<core::ShardCsv> parts;
      for (std::size_t i = 0; i < shards; ++i) {
        // Alternate schedulers across shards: bytes must not care.
        const core::Schedule schedule = (i % 2 == 0)
                                            ? core::Schedule::kFixed
                                            : core::Schedule::kStealing;
        parts.push_back(parse_shard(
            shard_csv_text(plan, i, threads, schedule),
            "shard" + std::to_string(i)));
      }
      EXPECT_EQ(core::merge_shard_csv(parts), reference)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardMergeTest, RunShardCoversFamiliesSpansToo) {
  // Pre-built instance spans shard the same way: the slice is global-
  // indexed, so entries carry global indices.
  util::Xoshiro256 rng(7);
  std::vector<gen::Instance> instances;
  std::vector<paths::DipathFamily> families;
  for (int i = 0; i < 10; ++i) {
    instances.push_back(gen::workload_instance("tree", {}, rng));
    families.push_back(instances.back().family);
  }
  Engine engine(EngineOptions{.threads = 2, .solve = {}});
  BatchRequest request = BatchRequest::of(families);
  const core::BatchReport report = engine.run_shard(request, 1, 2);
  ASSERT_EQ(report.entries.size(), 5u);
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    EXPECT_EQ(report.entries[i].index, 5 + i);
  }
}

// ---------------------------------------------------------------------------
// Merge validation error paths — no silent partial merges
// ---------------------------------------------------------------------------

/// Expects `merge_shard_csv(parts)` to throw an InvalidArgument whose
/// message contains `needle`.
void expect_merge_error(const std::vector<core::ShardCsv>& parts,
                        const std::string& needle) {
  try {
    (void)core::merge_shard_csv(parts);
    FAIL() << "merge succeeded; expected error mentioning '" << needle << "'";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ShardMergeErrorTest, RejectsShardsFromDifferentPlans) {
  const ShardPlan plan_a(test_spec(), 2);
  ShardSpec other = test_spec();
  other.seed = kSeed + 1;  // different workload => different plan
  const ShardPlan plan_b(other, 2);

  const std::vector<core::ShardCsv> parts = {
      parse_shard(fabricated_shard_text(plan_a.manifest(0)), "a0"),
      parse_shard(fabricated_shard_text(plan_b.manifest(1)), "b1"),
  };
  expect_merge_error(parts, "different plans");
}

TEST(ShardMergeErrorTest, RejectsAMissingShard) {
  const ShardPlan plan(test_spec(), 3);
  const std::vector<core::ShardCsv> parts = {
      parse_shard(fabricated_shard_text(plan.manifest(0)), "s0"),
      parse_shard(fabricated_shard_text(plan.manifest(2)), "s2"),
  };
  expect_merge_error(parts, "missing shard 1");
}

TEST(ShardMergeErrorTest, RejectsADuplicateShard) {
  const ShardPlan plan(test_spec(), 2);
  const std::vector<core::ShardCsv> parts = {
      parse_shard(fabricated_shard_text(plan.manifest(0)), "s0"),
      parse_shard(fabricated_shard_text(plan.manifest(0)), "s0-again"),
  };
  expect_merge_error(parts, "duplicate shard 0");
}

TEST(ShardMergeErrorTest, RejectsOverlappingIndexRanges) {
  const ShardPlan plan(test_spec(), 2);
  ShardManifest tampered = plan.manifest(1);
  tampered.range.begin -= 1;  // now overlaps shard 0's range
  const std::vector<core::ShardCsv> parts = {
      parse_shard(fabricated_shard_text(plan.manifest(0)), "s0"),
      parse_shard(fabricated_shard_text(tampered), "s1-overlap"),
  };
  expect_merge_error(parts, "overlaps");
}

TEST(ShardMergeErrorTest, RejectsGappedAndShortCoverage) {
  const ShardPlan plan(test_spec(), 2);
  ShardManifest gapped = plan.manifest(1);
  gapped.range.begin += 1;  // one index covered by no shard
  expect_merge_error({parse_shard(fabricated_shard_text(plan.manifest(0)),
                                  "s0"),
                      parse_shard(fabricated_shard_text(gapped), "s1-gap")},
                     "gap");

  ShardManifest short_tail = plan.manifest(1);
  short_tail.range.end -= 1;  // coverage stops before count
  expect_merge_error(
      {parse_shard(fabricated_shard_text(plan.manifest(0)), "s0"),
       parse_shard(fabricated_shard_text(short_tail), "s1-short")},
      "instances");
}

TEST(ShardMergeErrorTest, RejectsTruncatedShardFiles) {
  const ShardPlan plan(test_spec(), 2);
  const std::string text = fabricated_shard_text(plan.manifest(0));

  // Cut mid-row: the file no longer ends in a newline.
  try {
    (void)parse_shard(text.substr(0, text.size() - 3), "cut-mid-row");
    FAIL() << "truncated shard parsed";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }

  // Cut on a row boundary: well-formed lines, but rows are missing.
  const std::size_t last_row_start = text.rfind('\n', text.size() - 2) + 1;
  try {
    (void)parse_shard(text.substr(0, last_row_start), "cut-at-row");
    FAIL() << "short shard parsed";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }

  // Not a shard CSV at all.
  EXPECT_THROW((void)parse_shard("index,method\n0,x\n", "plain-csv"),
               InvalidArgument);
  EXPECT_THROW((void)parse_shard("", "empty"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Spec validation, striped layouts, and the JSON-lines pipeline
// ---------------------------------------------------------------------------

// Regression: a NaN/inf density canonicalized — and was emitted into
// manifests — as invalid JSON; the hash now rejects it at the source.
TEST(ShardSpecTest, RejectsNonFiniteParams) {
  ShardSpec spec = test_spec();
  spec.params.density = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)core::shard_request_hash(spec), InvalidArgument);
  EXPECT_THROW(ShardPlan(spec, 2), InvalidArgument);
  spec.params.density = std::numeric_limits<double>::infinity();
  EXPECT_THROW(ShardPlan(spec, 2), InvalidArgument);
}

TEST(ShardPlanTest, StripedPlanDiffersFromContiguousAndRoundTrips) {
  const ShardPlan contiguous(test_spec(), 3);
  const ShardPlan striped(test_spec(), 3, core::ShardLayout::kStriped);
  EXPECT_EQ(contiguous.request_hash(), striped.request_hash());
  EXPECT_NE(contiguous.id(), striped.id()) << "layout must change the plan id";

  const ShardManifest m = striped.manifest(1);
  EXPECT_EQ(m.layout, core::ShardLayout::kStriped);
  EXPECT_EQ(m.range.begin, 1u);
  EXPECT_EQ(m.range.end, kCount);
  EXPECT_EQ(m.stride(), 3u);
  EXPECT_EQ(m.instance_count(), kCount / 3);

  const ShardManifest back = core::parse_manifest(core::manifest_to_json(m));
  EXPECT_EQ(back.layout, core::ShardLayout::kStriped);
  EXPECT_EQ(back.plan_id, striped.id());
  EXPECT_EQ(back.range, m.range);
}

TEST(ShardMergeTest, StripedMergedBytesMatchUnsharded) {
  const std::string reference = unsharded_csv(2);
  for (const std::size_t shards : {2u, 5u}) {
    const ShardPlan plan(test_spec(), shards, core::ShardLayout::kStriped);
    std::vector<core::ShardCsv> parts;
    for (std::size_t i = 0; i < shards; ++i) {
      EngineOptions options;
      options.threads = (i % 2 == 0) ? 1 : 4;
      Engine engine(options);
      std::ostringstream os;
      os << core::shard_csv_header(plan.manifest(i));
      CsvStreamSink sink(os);
      BatchRequest request = BatchRequest::generated(
          plan.spec().family, plan.spec().count, plan.spec().params);
      request.options.seed = plan.spec().seed;
      request.options.chunk = 4;
      request.options.keep_entries = false;
      request.sinks = {&sink};
      (void)engine.run_shard(request, i, shards,
                             core::ShardLayout::kStriped);
      parts.push_back(parse_shard(os.str(), "striped" + std::to_string(i)));
    }
    EXPECT_EQ(core::merge_shard_csv(parts), reference)
        << "striped shards=" << shards;
  }
}

TEST(ShardMergeErrorTest, RejectsMixedLayouts) {
  const ShardPlan contiguous(test_spec(), 2);
  const ShardPlan striped(test_spec(), 2, core::ShardLayout::kStriped);
  // Same request, different layouts => different plan ids: the plan-id
  // check refuses before any row surgery happens.
  std::string striped_text = core::shard_csv_header(striped.manifest(1));
  striped_text += "index,method,paths,load,wavelengths,optimal\n";
  for (std::size_t i = 1; i < kCount; i += 2) {
    striped_text += std::to_string(i) + ",theorem1,1,1,1,1\n";
  }
  expect_merge_error(
      {parse_shard(fabricated_shard_text(contiguous.manifest(0)), "c0"),
       parse_shard(striped_text, "s1")},
      "different plans");
}

/// A well-formed shard JSON-lines text for `manifest`: manifest line, one
/// synthetic row object per covered index, one aggregate report line.
std::string fabricated_shard_json(const ShardManifest& manifest) {
  std::string text = core::manifest_to_json(manifest) + "\n";
  for (std::size_t i = manifest.range.begin; i < manifest.range.end;
       i += manifest.stride()) {
    text += "{\"index\":" + std::to_string(i) + ",\"wavelengths\":1}\n";
  }
  text += "{\"instances\":" + std::to_string(manifest.instance_count()) +
          "}\n";
  return text;
}

core::ShardJson parse_shard_json(const std::string& text,
                                 const std::string& name) {
  std::istringstream in(text);
  return core::read_shard_json(in, name);
}

TEST(ShardJsonTest, ReadValidatesAndDropsTheAggregateLine) {
  const ShardPlan plan(test_spec(), 3);
  const ShardManifest m = plan.manifest(1);
  const core::ShardJson shard =
      parse_shard_json(fabricated_shard_json(m), "j1");
  EXPECT_EQ(shard.row_count, m.instance_count());
  EXPECT_EQ(shard.rows.find("{\"instances\""), std::string::npos)
      << "aggregate line leaked into the row bytes";
  EXPECT_NE(shard.rows.find("{\"index\":" +
                            std::to_string(m.range.begin) + ","),
            std::string::npos);
}

TEST(ShardJsonTest, MergeReassemblesRowsInGlobalIndexOrder) {
  const ShardPlan plan(test_spec(), 3, core::ShardLayout::kStriped);
  std::vector<core::ShardJson> parts;
  for (std::size_t i = 0; i < 3; ++i) {
    parts.push_back(parse_shard_json(
        fabricated_shard_json(plan.manifest(i)), "j" + std::to_string(i)));
  }
  const std::string merged = core::merge_shard_json(parts);
  std::istringstream in(merged);
  std::string line;
  std::size_t expected = 0;
  while (std::getline(in, line)) {
    const std::string want = "{\"index\":" + std::to_string(expected) + ",";
    EXPECT_EQ(line.substr(0, want.size()), want);
    ++expected;
  }
  EXPECT_EQ(expected, kCount);
}

TEST(ShardJsonTest, RejectsTruncationAndMissingAggregate) {
  const ShardPlan plan(test_spec(), 2);
  const ShardManifest m = plan.manifest(0);
  const std::string text = fabricated_shard_json(m);

  // Drop the aggregate line: the reader calls that a truncation.
  const std::size_t last_line =
      text.rfind('\n', text.size() - 2) + 1;
  EXPECT_THROW((void)parse_shard_json(text.substr(0, last_line), "no-agg"),
               InvalidArgument);

  // Replace the aggregate with one more row object: also rejected.
  std::string extra_row = text.substr(0, last_line);
  extra_row += "{\"index\":999,\"wavelengths\":1}\n";
  EXPECT_THROW((void)parse_shard_json(extra_row, "extra-row"),
               InvalidArgument);

  // Trailing bytes after the aggregate are rejected too.
  EXPECT_THROW((void)parse_shard_json(text + "garbage\n", "tail"),
               InvalidArgument);

  // A row carrying the wrong global index is named by position.
  std::string wrong = core::manifest_to_json(m) + "\n";
  for (std::size_t i = 0; i < m.range.size(); ++i) {
    wrong += "{\"index\":" + std::to_string(i + 1) + ",\"w\":1}\n";
  }
  wrong += "{\"instances\":1}\n";
  EXPECT_THROW((void)parse_shard_json(wrong, "wrong-index"),
               InvalidArgument);
}

TEST(ShardMergeErrorTest, RejectsRowsWithTheWrongIndices) {
  const ShardPlan plan(test_spec(), 2);
  const ShardManifest m = plan.manifest(1);
  // Rows carrying shard 0's indices under shard 1's manifest: the leading
  // index field betrays them.
  std::string text = core::shard_csv_header(m);
  text += "index,method,paths,load,wavelengths,optimal\n";
  for (std::size_t i = 0; i < m.range.size(); ++i) {
    text += std::to_string(i) + ",theorem1,1,1,1,1\n";
  }
  EXPECT_THROW((void)parse_shard(text, "wrong-range"), InvalidArgument);
}

}  // namespace
