// Differential suite for the runtime-dispatched SIMD kernels: every
// reachable ISA tier must produce byte-identical results to the scalar
// reference on every kernel, across adversarial sizes at word and vector
// boundaries. This is the contract that lets a tier land at all — see
// CONTRIBUTING.md. Also pins the find_first_zero / find_next_zero edge
// semantics (no zero => size(), start index >= size() => size(), never a
// read past the tail word) that the first-fit coloring loop relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"
#include "util/dynamic_bitset.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace simd = wdag::util::simd;
using wdag::util::AlignedWords;
using wdag::util::ConstBitsetView;
using wdag::util::DynamicBitset;
using wdag::util::Xoshiro256;

namespace {

// Word/xmm/ymm/zmm boundary straddlers, in bits.
const std::vector<std::size_t> kBitSizes = {0,   1,   63,  64,  65, 255,
                                            256, 257, 511, 512, 513};

constexpr std::uint64_t kOnes = ~std::uint64_t{0};

std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

/// Random words with the tail bits beyond `bits` forced to zero, matching
/// the DynamicBitset invariant.
std::vector<std::uint64_t> random_words(Xoshiro256& rng, std::size_t bits) {
  std::vector<std::uint64_t> w(words_for(bits), 0);
  for (auto& x : w) x = rng();
  if (bits % 64 != 0 && !w.empty()) {
    w.back() &= (std::uint64_t{1} << (bits % 64)) - 1;
  }
  return w;
}

/// Scalar reference implementations, kept deliberately naive.
void ref_or_words(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

std::size_t ref_find_not_ones(const std::uint64_t* w, std::size_t from,
                              std::size_t n) {
  for (std::size_t i = from; i < n; ++i) {
    if (w[i] != kOnes) return i;
  }
  return n;
}

/// RAII guard: forces one tier for a scope, restores the previous one.
class TierGuard {
 public:
  explicit TierGuard(simd::IsaTier tier)
      : previous_(simd::set_active_tier(tier)) {}
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;
  ~TierGuard() { simd::set_active_tier(previous_); }

 private:
  simd::IsaTier previous_;
};

/// Runs `body(tier)` once per reachable tier with that tier active.
template <class Fn>
void for_each_tier(Fn&& body) {
  for (const simd::IsaTier tier : simd::reachable_tiers()) {
    TierGuard guard(tier);
    SCOPED_TRACE(simd::tier_name(tier));
    body(tier);
  }
}

TEST(SimdDispatch, ScalarAlwaysReachableAndOrdered) {
  const auto tiers = simd::reachable_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::IsaTier::kScalar);
  for (std::size_t i = 1; i < tiers.size(); ++i) {
    EXPECT_LT(static_cast<int>(tiers[i - 1]), static_cast<int>(tiers[i]));
  }
  // The detected tier is the highest reachable one.
  EXPECT_EQ(tiers.back(), simd::detected_tier());
}

TEST(SimdDispatch, SetActiveTierRoundTrips) {
  const simd::IsaTier before = simd::active_tier();
  const simd::IsaTier prev = simd::set_active_tier(simd::IsaTier::kScalar);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(simd::active_tier(), simd::IsaTier::kScalar);
  simd::set_active_tier(before);
  EXPECT_EQ(simd::active_tier(), before);
}

TEST(SimdDispatch, TierNamesAreStable) {
  EXPECT_STREQ(simd::tier_name(simd::IsaTier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(simd::IsaTier::kSse2), "sse2");
  EXPECT_STREQ(simd::tier_name(simd::IsaTier::kAvx2), "avx2");
  EXPECT_STREQ(simd::tier_name(simd::IsaTier::kAvx512), "avx512");
}

// ------------------------- kernel differentials ------------------------

TEST(SimdKernels, OrWordsMatchesScalar) {
  Xoshiro256 rng(0x0A11CE);
  for_each_tier([&](simd::IsaTier) {
    for (const std::size_t bits : kBitSizes) {
      const std::size_t n = words_for(bits);
      const auto src = random_words(rng, bits);
      const auto base = random_words(rng, bits);
      auto expect = base;
      ref_or_words(expect.data(), src.data(), n);

      // Raw table (no inline small-size bypass) and wrapper both match.
      auto raw = base;
      simd::kernels().or_words(raw.data(), src.data(), n);
      EXPECT_EQ(raw, expect) << "bits=" << bits << " (raw table)";

      auto wrapped = base;
      simd::or_words(wrapped.data(), src.data(), n);
      EXPECT_EQ(wrapped, expect) << "bits=" << bits << " (wrapper)";
    }
  });
}

TEST(SimdKernels, ZeroWordsMatchesScalar) {
  Xoshiro256 rng(0x5EED);
  for_each_tier([&](simd::IsaTier) {
    for (const std::size_t bits : kBitSizes) {
      const std::size_t n = words_for(bits);
      auto raw = random_words(rng, bits);
      simd::kernels().zero_words(raw.data(), n);
      EXPECT_EQ(raw, std::vector<std::uint64_t>(n, 0)) << "bits=" << bits;

      auto wrapped = random_words(rng, bits);
      simd::zero_words(wrapped.data(), n);
      EXPECT_EQ(wrapped, std::vector<std::uint64_t>(n, 0)) << "bits=" << bits;
    }
  });
}

TEST(SimdKernels, FindNotOnesMatchesScalar) {
  Xoshiro256 rng(0xF17D);
  for_each_tier([&](simd::IsaTier) {
    for (const std::size_t bits : kBitSizes) {
      const std::size_t n = words_for(bits);
      // All-ones words with 0, 1, or 2 random holes, scanned from every
      // start word — exercises the vector prologue/tail at each offset.
      for (int holes = 0; holes <= 2; ++holes) {
        std::vector<std::uint64_t> w(n, kOnes);
        for (int h = 0; h < holes && n > 0; ++h) {
          w[rng.below(n)] &= ~(std::uint64_t{1} << rng.below(64));
        }
        for (std::size_t from = 0; from <= n; ++from) {
          const std::size_t expect = ref_find_not_ones(w.data(), from, n);
          EXPECT_EQ(simd::kernels().find_not_ones(w.data(), from, n), expect)
              << "bits=" << bits << " from=" << from << " holes=" << holes;
          EXPECT_EQ(simd::find_not_ones(w.data(), from, n), expect)
              << "bits=" << bits << " from=" << from << " holes=" << holes;
        }
      }
    }
  });
}

TEST(SimdKernels, OrRowsMatchesScalar) {
  Xoshiro256 rng(0x0E0E5);
  for_each_tier([&](simd::IsaTier) {
    for (const std::size_t bits : kBitSizes) {
      if (bits == 0) continue;  // no rows to splat into
      const std::size_t words = words_for(bits);
      // Cache-line stride like the ConflictGraph pool, plus the tight
      // stride == words case.
      for (const std::size_t stride : {words, (words + 7) / 8 * 8}) {
        const std::size_t rows = 17;
        std::vector<std::uint64_t> pool(rows * stride, 0);
        for (auto& x : pool) x = rng();
        const auto src = random_words(rng, bits);
        std::vector<std::uint32_t> ids;
        for (std::size_t r = 0; r < rows; r += 1 + rng.below(3)) {
          ids.push_back(static_cast<std::uint32_t>(r));
        }

        auto expect = pool;
        for (const std::uint32_t id : ids) {
          ref_or_words(expect.data() + id * stride, src.data(), words);
        }
        auto got = pool;
        simd::or_rows(got.data(), stride, ids.data(), ids.size(), src.data(),
                      words);
        EXPECT_EQ(got, expect) << "bits=" << bits << " stride=" << stride;
      }
    }
  });
}

// --------------------- bitset-level differentials ----------------------

TEST(SimdKernels, BitsetZeroScansMatchScalarAcrossTiers) {
  Xoshiro256 rng(0xB17);
  for (const std::size_t bits : kBitSizes) {
    // Random masks plus the adversarial fills.
    std::vector<DynamicBitset> cases;
    DynamicBitset ones(bits);
    ones.set_all();
    cases.push_back(ones);
    cases.push_back(DynamicBitset(bits));  // all zeros
    if (bits > 0) {
      DynamicBitset hole(bits);
      hole.set_all();
      hole.reset(bits - 1);  // single hole in the tail word
      cases.push_back(hole);
    }
    for (int i = 0; i < 8; ++i) {
      DynamicBitset b(bits);
      for (std::size_t j = 0; j < bits; ++j) {
        if (rng.below(2) != 0) b.set_unchecked(j);
      }
      cases.push_back(b);
    }

    for (const DynamicBitset& b : cases) {
      // Scalar first, as the reference.
      std::vector<std::size_t> expect_zeros;
      {
        TierGuard guard(simd::IsaTier::kScalar);
        for (std::size_t i = b.find_first_zero(); i < bits;
             i = b.find_next_zero(i)) {
          expect_zeros.push_back(i);
        }
      }
      for_each_tier([&](simd::IsaTier) {
        std::vector<std::size_t> zeros;
        for (std::size_t i = b.find_first_zero(); i < bits;
             i = b.find_next_zero(i)) {
          zeros.push_back(i);
        }
        EXPECT_EQ(zeros, expect_zeros) << "bits=" << bits;
      });
    }
  }
}

TEST(SimdKernels, FindZeroEdgeSemantics) {
  for_each_tier([&](simd::IsaTier) {
    for (const std::size_t bits : kBitSizes) {
      DynamicBitset full(bits);
      full.set_all();
      // No zero exists: both scans report size(), not a tail-bit index.
      EXPECT_EQ(full.find_first_zero(), bits);
      if (bits > 0) {
        EXPECT_EQ(full.find_next_zero(0), bits);
      }

      DynamicBitset empty(bits);
      // Start index at/past size(): always size(), for any start value.
      EXPECT_EQ(empty.find_next_zero(bits), bits);
      EXPECT_EQ(empty.find_next_zero(bits + 1), bits);
      EXPECT_EQ(empty.find_next_zero(std::numeric_limits<std::size_t>::max()),
                bits);
      EXPECT_EQ(full.find_next_zero(bits), bits);
      EXPECT_EQ(full.find_next(std::numeric_limits<std::size_t>::max()), bits);
      EXPECT_EQ(empty.find_next(bits), bits);

      if (bits > 1) {
        // Single zero in the tail word: find it from the front and from
        // just before it, then confirm exhaustion after it.
        DynamicBitset hole(bits);
        hole.set_all();
        hole.reset(bits - 1);
        EXPECT_EQ(hole.find_first_zero(), bits - 1);
        EXPECT_EQ(hole.find_next_zero(bits - 2), bits - 1);
        EXPECT_EQ(hole.find_next_zero(bits - 1), bits);
      }
    }
  });
}

TEST(SimdKernels, BitsetOrMatchesAcrossTiers) {
  Xoshiro256 rng(0x0B5E7);
  for (const std::size_t bits : kBitSizes) {
    DynamicBitset a(bits), b(bits);
    for (std::size_t j = 0; j < bits; ++j) {
      if (rng.below(2) != 0) a.set_unchecked(j);
      if (rng.below(2) != 0) b.set_unchecked(j);
    }
    DynamicBitset expect;
    {
      TierGuard guard(simd::IsaTier::kScalar);
      expect = a;
      expect |= b;
    }
    for_each_tier([&](simd::IsaTier) {
      DynamicBitset got = a;
      got |= b;
      EXPECT_EQ(got, expect) << "bits=" << bits;
      DynamicBitset into = a;
      b.or_into(into);
      EXPECT_EQ(into, expect) << "bits=" << bits << " (or_into)";
    });
  }
}

// ----------------------------- view + pool -----------------------------

TEST(SimdKernels, ViewRoundTripsThroughOwningBitset) {
  Xoshiro256 rng(0x71E4);
  for (const std::size_t bits : kBitSizes) {
    DynamicBitset b(bits);
    for (std::size_t j = 0; j < bits; ++j) {
      if (rng.below(3) == 0) b.set_unchecked(j);
    }
    const ConstBitsetView view = b;
    EXPECT_EQ(view.size(), bits);
    EXPECT_EQ(view.count(), b.count());
    EXPECT_EQ(view.find_first(), b.find_first());
    EXPECT_EQ(view.to_indices(), b.to_indices());
    const DynamicBitset copy(view);
    EXPECT_EQ(copy, b);
  }
}

TEST(SimdKernels, AlignedWordsIsCacheLineAlignedAndZeroed) {
  for (const std::size_t words : {std::size_t{1}, std::size_t{7},
                                  std::size_t{8}, std::size_t{129}}) {
    AlignedWords buf(words);
    ASSERT_EQ(buf.size(), words);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                  wdag::util::kBitsetAlignment,
              0u);
    for (std::size_t i = 0; i < words; ++i) EXPECT_EQ(buf.data()[i], 0u);
    buf.data()[0] = kOnes;
    buf.zero();
    EXPECT_EQ(buf.data()[0], 0u);
    AlignedWords moved(std::move(buf));
    EXPECT_EQ(moved.size(), words);
    EXPECT_EQ(buf.size(), 0u);  // NOLINT(bugprone-use-after-move)
  }
  const AlignedWords empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.data(), nullptr);
}

TEST(SimdKernels, SetActiveTierRejectsUnreachable) {
  // Tiers past the detected one are never reachable.
  const auto detected = simd::detected_tier();
  if (detected != simd::IsaTier::kAvx512) {
    EXPECT_THROW(simd::set_active_tier(simd::IsaTier::kAvx512),
                 wdag::InvalidArgument);
  } else {
    SUCCEED() << "all tiers reachable on this machine";
  }
}

}  // namespace
