// util/socket.cpp error paths — the failure modes remote dispatch leans
// on: a bounded dial against a peer that never answers, fast failure on
// a refused port, header+payload sharing one TCP segment, a peer that
// vanishes mid-payload, and EINTR storms that must neither shorten nor
// un-bound a poll deadline.
//
// POSIX-only machinery (raw listen() backlogs, pthread_kill); the whole
// suite is compiled on the same platforms as the socket implementation.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/socket.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <arpa/inet.h>
#include <chrono>
#include <csignal>
#include <netinet/in.h>
#include <pthread.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace wdag {
namespace {

using util::ReadStatus;
using util::TcpConn;
using util::TcpListener;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// A loopback peer that accepts but never answers: a listener whose
/// accept queue is already full, so further SYNs are silently dropped
/// and the dialer sees a blackhole — the worst case TcpConn::connect's
/// timeout exists for. Returns the raw listening fd (backlog 0) and the
/// connections holding the queue full.
struct Blackhole {
  int fd = -1;
  int port = 0;
  std::vector<TcpConn> fillers;

  // Setup lives outside the constructor so ASSERT_* (which returns) is
  // usable.
  void open() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ASSERT_EQ(::listen(fd, 0), 0);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len), 0);
    port = ntohs(bound.sin_port);
    // Fill the accept queue (backlog 0 admits one established
    // connection on Linux); once a dial times out the hole is ready.
    for (int i = 0; i < 4; ++i) {
      try {
        fillers.push_back(TcpConn::connect("127.0.0.1", port, 200));
      } catch (const InternalError&) {
        return;  // queue is full: this dial already hung
      }
    }
  }
  ~Blackhole() {
    if (fd >= 0) ::close(fd);
  }
};

TEST(SocketTest, ConnectTimeoutIsBoundedAgainstASilentPeer) {
  Blackhole hole;
  hole.open();
  ASSERT_NE(hole.port, 0);
  const auto start = Clock::now();
  EXPECT_THROW(TcpConn::connect("127.0.0.1", hole.port, 300), InternalError);
  const double elapsed = ms_since(start);
  // The dial must cost ~the requested timeout — never the kernel's
  // minutes-long SYN retry ladder, and not meaningfully less either.
  EXPECT_GE(elapsed, 250.0);
  EXPECT_LT(elapsed, 3000.0);
}

TEST(SocketTest, RefusedConnectionFailsFast) {
  int closed_port = 0;
  {
    const TcpListener probe = TcpListener::listen("127.0.0.1", 0);
    closed_port = probe.port();
  }  // listener closed: the port now refuses with RST
  const auto start = Clock::now();
  EXPECT_THROW(TcpConn::connect("127.0.0.1", closed_port, 5000),
               InternalError);
  // A refused dial must not sit out the full timeout.
  EXPECT_LT(ms_since(start), 2000.0);
}

TEST(SocketTest, MalformedHostIsRejected) {
  EXPECT_THROW(TcpConn::connect("not-an-ip", 80, 100), InvalidArgument);
}

TEST(SocketTest, ReadExactDrainsBytesBufferedPastTheHeaderLine) {
  TcpListener listener = TcpListener::listen("127.0.0.1", 0);
  TcpConn client = TcpConn::connect("127.0.0.1", listener.port(), 1000);
  auto server = listener.accept(1000);
  ASSERT_TRUE(server.has_value());

  // Header line and payload in ONE send — the normal case on loopback;
  // read_exact must start from the bytes read_line over-read.
  const std::string payload = "0123456789abcdef";
  ASSERT_TRUE(server->write_all("header\n" + payload));

  std::string line;
  ASSERT_EQ(client.read_line(line, 1000), ReadStatus::kLine);
  EXPECT_EQ(line, "header");
  std::string got;
  ASSERT_EQ(client.read_exact(got, payload.size(), 1000), ReadStatus::kLine);
  EXPECT_EQ(got, payload);
}

TEST(SocketTest, PeerCloseMidPayloadReadsAsClosedWithPartialBytesKept) {
  TcpListener listener = TcpListener::listen("127.0.0.1", 0);
  TcpConn client = TcpConn::connect("127.0.0.1", listener.port(), 1000);
  auto server = listener.accept(1000);
  ASSERT_TRUE(server.has_value());

  ASSERT_TRUE(server->write_all("header\nfirst-half"));
  server->close();  // promise broken: the other half never comes

  std::string line;
  ASSERT_EQ(client.read_line(line, 1000), ReadStatus::kLine);
  std::string got;
  EXPECT_EQ(client.read_exact(got, 100, 1000), ReadStatus::kClosed);
  // The partial progress survives in the out parameter (the transport
  // reports how many bytes arrived before the connection died).
  EXPECT_EQ(got, "first-half");
}

TEST(SocketTest, WriteToAVanishedPeerReturnsFalse) {
  util::ignore_sigpipe();
  TcpListener listener = TcpListener::listen("127.0.0.1", 0);
  TcpConn client = TcpConn::connect("127.0.0.1", listener.port(), 1000);
  {
    auto server = listener.accept(1000);
    ASSERT_TRUE(server.has_value());
  }  // server side closed
  // The first write may land in the kernel buffer; the RST turns a
  // subsequent write into a clean false, never a SIGPIPE death.
  bool ok = true;
  for (int i = 0; ok && i < 16; ++i) {
    ok = client.write_line("are you there?");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(ok);
}

TEST(SocketTest, EintrDuringPollNeitherShortensNorUnboundsTheDeadline) {
  // A no-op SIGUSR1 handler installed WITHOUT SA_RESTART makes every
  // delivery interrupt poll() with EINTR.
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old{};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  TcpListener listener = TcpListener::listen("127.0.0.1", 0);
  TcpConn client = TcpConn::connect("127.0.0.1", listener.port(), 1000);
  auto server = listener.accept(1000);
  ASSERT_TRUE(server.has_value());

  const pthread_t reader = ::pthread_self();
  std::atomic<bool> stop{false};
  std::thread pest([&] {
    while (!stop.load()) {
      ::pthread_kill(reader, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // The peer stays silent: a 400ms read under constant EINTR fire must
  // still time out at ~400ms — not early (a naive retry loop restarting
  // the full timeout would also never return) and not never.
  std::string line;
  const auto start = Clock::now();
  const ReadStatus status = client.read_line(line, 400);
  const double elapsed = ms_since(start);
  stop.store(true);
  pest.join();
  ::sigaction(SIGUSR1, &old, nullptr);

  EXPECT_EQ(status, ReadStatus::kTimeout);
  EXPECT_GE(elapsed, 350.0);
  EXPECT_LT(elapsed, 3000.0);
}

}  // namespace
}  // namespace wdag

#endif  // POSIX
