// Tests for the canonical solve pipeline (api::solve_with over the
// built-in registry) — dispatch, forcing, certification, domain checks.

#include <gtest/gtest.h>

#include "conflict/coloring.hpp"
#include "core/solver.hpp"
#include "gen/family_gen.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "helpers.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag::core;
using wdag::paths::Dipath;
using wdag::paths::DipathFamily;

TEST(SolverTest, DispatchesToTheorem1OnCleanDags) {
  const auto g = wdag::test::chain(5);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1, 2}));
  fam.add(Dipath({1, 2, 3}));
  const auto res = wdag::test::solve_builtin(fam);
  EXPECT_EQ(res.strategy, kStrategyTheorem1);
  EXPECT_TRUE(res.optimal);
  EXPECT_EQ(res.wavelengths, res.load);
  EXPECT_TRUE(res.report.wavelengths_equal_load());
}

TEST(SolverTest, DispatchesToSplitMergeOnUppCycles) {
  const auto inst = wdag::gen::theorem2_instance(3);
  const auto res = wdag::test::solve_builtin(inst.family);
  // Exact certification may upgrade the strategy; either way the coloring
  // is valid and uses at most ceil(4/3 * pi) colors.
  EXPECT_TRUE(res.strategy == kStrategySplitMerge ||
              res.strategy == kStrategyExact);
  EXPECT_TRUE(wdag::conflict::is_valid_assignment(inst.family, res.coloring));
  EXPECT_EQ(res.wavelengths, 3u);  // chi(C7) == 3, and 3 == ceil(4/3 * 2)
}

TEST(SolverTest, DispatchesToDsaturOnGeneralDags) {
  const auto inst = wdag::gen::figure3_instance();
  SolveOptions opt;
  opt.exact_threshold = 0;  // keep the heuristic result
  const auto res = wdag::test::solve_builtin(inst.family, opt);
  EXPECT_EQ(res.strategy, kStrategyDsatur);
  EXPECT_TRUE(wdag::conflict::is_valid_assignment(inst.family, res.coloring));
}

TEST(SolverTest, ExactCertificationUpgradesSmallInstances) {
  const auto inst = wdag::gen::figure3_instance();
  const auto res =
      wdag::test::solve_builtin(inst.family);  // default options allow exact
  EXPECT_EQ(res.wavelengths, 3u);
  EXPECT_TRUE(res.optimal);
  EXPECT_EQ(res.strategy, kStrategyExact);
}

TEST(SolverTest, ForcedStrategyIsRespected) {
  const auto g = wdag::test::chain(5);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1}));
  fam.add(Dipath({1, 2}));
  for (const StrategyId id : {kStrategyTheorem1, kStrategySplitMerge,
                              kStrategyDsatur, kStrategyExact}) {
    const auto res = wdag::test::solve_builtin(fam, {}, id);
    EXPECT_EQ(res.wavelengths, 2u) << builtin_strategy_name(id);
    EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));
  }
}

TEST(SolverTest, ForcedTheorem1StillChecksDomain) {
  const auto inst = wdag::gen::figure3_instance();
  EXPECT_THROW(wdag::test::solve_builtin(inst.family, {}, kStrategyTheorem1),
               wdag::DomainError);
}

TEST(SolverTest, RejectsNonDagHosts) {
  const auto g = wdag::test::directed_triangle();
  DipathFamily fam(g);
  fam.add(Dipath({0}));
  EXPECT_THROW(wdag::test::solve_builtin(fam), wdag::DomainError);
}

TEST(SolverTest, Figure1NeedsKColors) {
  // The unbounded-ratio example: pi == 2 but w == k.
  for (std::size_t k : {3u, 5u, 7u}) {
    const auto inst = wdag::gen::figure1_pathological(k);
    const auto res = wdag::test::solve_builtin(inst.family);
    EXPECT_EQ(res.load, 2u);
    EXPECT_EQ(res.wavelengths, k);
    EXPECT_TRUE(res.optimal);  // exact certification fires (small instance)
  }
}

TEST(SolverTest, BuiltinStrategyNames) {
  EXPECT_EQ(builtin_strategy_name(kStrategyTheorem1), "theorem1");
  EXPECT_EQ(builtin_strategy_name(kStrategySplitMerge), "split-merge");
  EXPECT_EQ(builtin_strategy_name(kStrategyDsatur), "dsatur");
  EXPECT_EQ(builtin_strategy_name(kStrategyExact), "exact");
}

TEST(SolverTest, ReportIsPopulated) {
  const auto inst = wdag::gen::havet_instance();
  const auto res = wdag::test::solve_builtin(inst.family);
  EXPECT_TRUE(res.report.is_dag);
  EXPECT_TRUE(res.report.is_upp);
  EXPECT_EQ(res.report.internal_cycles, 1u);
}

TEST(SolverTest, RandomDagsAlwaysGetValidColorings) {
  wdag::util::Xoshiro256 rng(314);
  for (int trial = 0; trial < 12; ++trial) {
    const auto g = wdag::gen::random_dag(rng, 20, 0.15);
    if (g.num_arcs() == 0) continue;
    const auto fam = wdag::gen::random_walk_family(rng, g, 18, 1, 5);
    const auto res = wdag::test::solve_builtin(fam);
    EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));
    EXPECT_GE(res.wavelengths, res.load);
  }
}

}  // namespace
