// Parameterized matrix locking the solver's dispatch contract
// (api::solve_with over the built-in registry): every structural regime of
// every generator family must land on its documented strategy, and all
// four built-in outcomes must be reachable.
//
//   no internal cycle        -> kTheorem1 (always optimal)
//   UPP + internal cycles    -> kSplitMerge (exact certification disabled)
//   general                  -> kDsatur (exact certification disabled)
//   small conflict graph     -> kExact upgrade under default options

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "conflict/coloring.hpp"
#include "core/solver.hpp"
#include "gen/family_gen.hpp"
#include "gen/instance.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "gen/topologies.hpp"
#include "gen/upp_gen.hpp"
#include "helpers.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag;
using core::StrategyId;
using core::SolveOptions;
using core::kStrategyTheorem1;
using core::kStrategySplitMerge;
using core::kStrategyDsatur;
using core::kStrategyExact;
using wdag::test::solve_builtin;
using gen::Instance;

/// One cell of the dispatch matrix: a generator family plus the strategy
/// the solver must pick for it (under the given certification cutoff).
struct DispatchCase {
  std::string name;                       ///< test-name suffix
  std::function<Instance()> make;         ///< builds the instance
  std::size_t exact_threshold;            ///< SolveOptions::exact_threshold
  StrategyId expected;                    ///< required dispatch outcome
  bool expect_optimal;                    ///< must the result be certified?
};

std::ostream& operator<<(std::ostream& os, const DispatchCase& c) {
  return os << c.name;
}

Instance tree_instance() {
  util::Xoshiro256 rng(11);
  Instance inst = Instance::over(gen::random_out_tree(rng, 20));
  inst.family = gen::random_request_family(rng, *inst.graph, 16);
  return inst;
}

Instance repaired_dag_instance() {
  util::Xoshiro256 rng(5);
  Instance inst =
      Instance::over(gen::random_no_internal_cycle_dag(rng, 18, 0.25));
  inst.family = gen::random_walk_family(rng, *inst.graph, 14, 1, 5);
  return inst;
}

Instance spine_instance() {
  util::Xoshiro256 rng(3);
  Instance inst = Instance::over(gen::spine_with_leaves(9));
  inst.family = gen::random_request_family(rng, *inst.graph, 12);
  return inst;
}

Instance upp_cycle_instance() {
  util::Xoshiro256 rng(23);
  gen::UppCycleParams params;
  params.k = 3;
  return gen::random_upp_one_cycle_instance(rng, params, 10);
}

Instance grid_instance() {
  util::Xoshiro256 rng(17);
  Instance inst = Instance::over(gen::grid_dag(3, 4));
  inst.family = gen::random_request_family(rng, *inst.graph, 14);
  return inst;
}

class SolverDispatchMatrixTest
    : public ::testing::TestWithParam<DispatchCase> {};

TEST_P(SolverDispatchMatrixTest, DispatchesToDocumentedStrategy) {
  const DispatchCase& c = GetParam();
  const Instance inst = c.make();
  SolveOptions options;
  options.exact_threshold = c.exact_threshold;
  const auto result = solve_builtin(inst.family, options);

  EXPECT_EQ(result.strategy, c.expected)
      << "got " << result.strategy_name;
  if (c.expect_optimal) {
    EXPECT_TRUE(result.optimal);
  }
  // The contract's unconditional half: validity and the load lower bound.
  EXPECT_TRUE(conflict::is_valid_assignment(inst.family, result.coloring));
  EXPECT_GE(result.wavelengths, result.load);
  // Theorem 1 dispatch additionally certifies equality with the load.
  if (result.strategy == kStrategyTheorem1) {
    EXPECT_EQ(result.wavelengths, result.load);
    EXPECT_TRUE(result.report.wavelengths_equal_load());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SolverDispatchMatrixTest,
    ::testing::Values(
        // --- kTheorem1: every internal-cycle-free family, regardless of
        //     the certification cutoff (the structural proof wins).
        DispatchCase{"Theorem1_RandomOutTree", tree_instance, 0,
                     kStrategyTheorem1, true},
        DispatchCase{"Theorem1_RepairedRandomDag", repaired_dag_instance, 0,
                     kStrategyTheorem1, true},
        DispatchCase{"Theorem1_SpineWithLeaves", spine_instance, 48,
                     kStrategyTheorem1, true},
        // --- kSplitMerge: UPP hosts with internal cycles, certification off.
        DispatchCase{"SplitMerge_Theorem2Gadget",
                     [] { return gen::theorem2_instance(3); }, 0,
                     kStrategySplitMerge, false},
        DispatchCase{"SplitMerge_RandomUppOneCycle", upp_cycle_instance, 0,
                     kStrategySplitMerge, false},
        DispatchCase{"SplitMerge_HavetWagnerGraph",
                     [] { return gen::havet_instance(); }, 0,
                     kStrategySplitMerge, false},
        // --- kDsatur: general (non-UPP) hosts with internal cycles,
        //     certification off.
        DispatchCase{"Dsatur_Figure3", [] { return gen::figure3_instance(); },
                     0, kStrategyDsatur, false},
        DispatchCase{"Dsatur_GridRequests", grid_instance, 0, kStrategyDsatur,
                     false},
        DispatchCase{"Dsatur_Figure1Pathological",
                     [] { return gen::figure1_pathological(6); }, 0,
                     kStrategyDsatur, false},
        // --- kExact: small conflict graphs upgrade under default options.
        DispatchCase{"Exact_Figure3Certified",
                     [] { return gen::figure3_instance(); }, 48,
                     kStrategyExact, true},
        DispatchCase{"Exact_Theorem2Certified",
                     [] { return gen::theorem2_instance(2); }, 48,
                     kStrategyExact, true},
        DispatchCase{"Exact_Figure1Certified",
                     [] { return gen::figure1_pathological(5); }, 48,
                     kStrategyExact, true}),
    [](const ::testing::TestParamInfo<DispatchCase>& info) {
      return info.param.name;
    });

// Forcing a strategy bypasses dispatch for every family where the
// strategy's structural preconditions hold.
class SolverForcedStrategyTest : public ::testing::TestWithParam<StrategyId> {
};

TEST_P(SolverForcedStrategyTest, ForcedStrategyProducesValidColorings) {
  const StrategyId forced = GetParam();
  util::Xoshiro256 rng(29);
  Instance inst = Instance::over(gen::random_out_tree(rng, 16));
  inst.family = gen::random_request_family(rng, *inst.graph, 12);
  const auto result = solve_builtin(inst.family, {}, forced);
  EXPECT_EQ(result.strategy, forced);
  EXPECT_TRUE(conflict::is_valid_assignment(inst.family, result.coloring));
  EXPECT_GE(result.wavelengths, result.load);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SolverForcedStrategyTest,
                         ::testing::Values(kStrategyTheorem1,
                                           kStrategySplitMerge,
                                           kStrategyDsatur, kStrategyExact),
                         [](const ::testing::TestParamInfo<StrategyId>& info) {
                           // gtest param names must be alphanumeric, so the
                           // display names ("split-merge") are out.
                           return std::string(
                               info.param == kStrategyTheorem1 ? "Theorem1"
                               : info.param == kStrategySplitMerge
                                   ? "SplitMerge"
                               : info.param == kStrategyDsatur ? "Dsatur"
                                                               : "Exact");
                         });

// Structural preconditions survive forcing: Theorem 1 refuses hosts with
// internal cycles, split-merge refuses non-UPP hosts.
TEST(SolverDispatchContractTest, ForcedStructuralStrategiesCheckTheirDomain) {
  EXPECT_THROW(solve_builtin(gen::figure3_instance().family, {},
                             kStrategyTheorem1),
               wdag::DomainError);
  EXPECT_THROW(solve_builtin(gen::figure3_instance().family, {},
                             kStrategySplitMerge),
               wdag::DomainError);
}

// The exact upgrade must never fire above the cutoff: a conflict graph
// larger than exact_threshold keeps the heuristic strategy.
TEST(SolverDispatchContractTest, ExactUpgradeRespectsThreshold) {
  const Instance inst = gen::figure1_pathological(12);  // 12-vertex K_12
  SolveOptions options;
  options.exact_threshold = 11;
  const auto result = solve_builtin(inst.family, options);
  EXPECT_EQ(result.strategy, kStrategyDsatur);
  options.exact_threshold = 12;
  const auto upgraded = solve_builtin(inst.family, options);
  EXPECT_EQ(upgraded.strategy, kStrategyExact);
  EXPECT_TRUE(upgraded.optimal);
}

}  // namespace
