// Parameterized matrix locking the solver's dispatch contract
// (src/core/solver.hpp): every structural regime of every generator family
// must land on its documented Method, and all four Method outcomes must be
// reachable.
//
//   no internal cycle        -> kTheorem1 (always optimal)
//   UPP + internal cycles    -> kSplitMerge (exact certification disabled)
//   general                  -> kDsatur (exact certification disabled)
//   small conflict graph     -> kExact upgrade under default options

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "conflict/coloring.hpp"
#include "core/solver.hpp"
#include "gen/family_gen.hpp"
#include "gen/instance.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "gen/topologies.hpp"
#include "gen/upp_gen.hpp"
#include "helpers.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag;
using core::Method;
using core::SolveOptions;
using gen::Instance;

/// One cell of the dispatch matrix: a generator family plus the method the
/// solver must pick for it (under the given exact-certification cutoff).
struct DispatchCase {
  std::string name;                       ///< test-name suffix
  std::function<Instance()> make;         ///< builds the instance
  std::size_t exact_threshold;            ///< SolveOptions::exact_threshold
  Method expected;                        ///< required dispatch outcome
  bool expect_optimal;                    ///< must the result be certified?
};

std::ostream& operator<<(std::ostream& os, const DispatchCase& c) {
  return os << c.name;
}

Instance tree_instance() {
  util::Xoshiro256 rng(11);
  Instance inst = Instance::over(gen::random_out_tree(rng, 20));
  inst.family = gen::random_request_family(rng, *inst.graph, 16);
  return inst;
}

Instance repaired_dag_instance() {
  util::Xoshiro256 rng(5);
  Instance inst =
      Instance::over(gen::random_no_internal_cycle_dag(rng, 18, 0.25));
  inst.family = gen::random_walk_family(rng, *inst.graph, 14, 1, 5);
  return inst;
}

Instance spine_instance() {
  util::Xoshiro256 rng(3);
  Instance inst = Instance::over(gen::spine_with_leaves(9));
  inst.family = gen::random_request_family(rng, *inst.graph, 12);
  return inst;
}

Instance upp_cycle_instance() {
  util::Xoshiro256 rng(23);
  gen::UppCycleParams params;
  params.k = 3;
  return gen::random_upp_one_cycle_instance(rng, params, 10);
}

Instance grid_instance() {
  util::Xoshiro256 rng(17);
  Instance inst = Instance::over(gen::grid_dag(3, 4));
  inst.family = gen::random_request_family(rng, *inst.graph, 14);
  return inst;
}

class SolverDispatchMatrixTest
    : public ::testing::TestWithParam<DispatchCase> {};

TEST_P(SolverDispatchMatrixTest, DispatchesToDocumentedMethod) {
  const DispatchCase& c = GetParam();
  const Instance inst = c.make();
  SolveOptions options;
  options.exact_threshold = c.exact_threshold;
  const auto result = core::solve(inst.family, options);

  EXPECT_EQ(result.method, c.expected)
      << "got " << core::method_name(result.method);
  if (c.expect_optimal) {
    EXPECT_TRUE(result.optimal);
  }
  // The contract's unconditional half: validity and the load lower bound.
  EXPECT_TRUE(conflict::is_valid_assignment(inst.family, result.coloring));
  EXPECT_GE(result.wavelengths, result.load);
  // Theorem 1 dispatch additionally certifies equality with the load.
  if (result.method == Method::kTheorem1) {
    EXPECT_EQ(result.wavelengths, result.load);
    EXPECT_TRUE(result.report.wavelengths_equal_load());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SolverDispatchMatrixTest,
    ::testing::Values(
        // --- kTheorem1: every internal-cycle-free family, regardless of
        //     the certification cutoff (the structural proof wins).
        DispatchCase{"Theorem1_RandomOutTree", tree_instance, 0,
                     Method::kTheorem1, true},
        DispatchCase{"Theorem1_RepairedRandomDag", repaired_dag_instance, 0,
                     Method::kTheorem1, true},
        DispatchCase{"Theorem1_SpineWithLeaves", spine_instance, 48,
                     Method::kTheorem1, true},
        // --- kSplitMerge: UPP hosts with internal cycles, certification off.
        DispatchCase{"SplitMerge_Theorem2Gadget",
                     [] { return gen::theorem2_instance(3); }, 0,
                     Method::kSplitMerge, false},
        DispatchCase{"SplitMerge_RandomUppOneCycle", upp_cycle_instance, 0,
                     Method::kSplitMerge, false},
        DispatchCase{"SplitMerge_HavetWagnerGraph",
                     [] { return gen::havet_instance(); }, 0,
                     Method::kSplitMerge, false},
        // --- kDsatur: general (non-UPP) hosts with internal cycles,
        //     certification off.
        DispatchCase{"Dsatur_Figure3", [] { return gen::figure3_instance(); },
                     0, Method::kDsatur, false},
        DispatchCase{"Dsatur_GridRequests", grid_instance, 0, Method::kDsatur,
                     false},
        DispatchCase{"Dsatur_Figure1Pathological",
                     [] { return gen::figure1_pathological(6); }, 0,
                     Method::kDsatur, false},
        // --- kExact: small conflict graphs upgrade under default options.
        DispatchCase{"Exact_Figure3Certified",
                     [] { return gen::figure3_instance(); }, 48,
                     Method::kExact, true},
        DispatchCase{"Exact_Theorem2Certified",
                     [] { return gen::theorem2_instance(2); }, 48,
                     Method::kExact, true},
        DispatchCase{"Exact_Figure1Certified",
                     [] { return gen::figure1_pathological(5); }, 48,
                     Method::kExact, true}),
    [](const ::testing::TestParamInfo<DispatchCase>& info) {
      return info.param.name;
    });

// Forcing a method bypasses dispatch for every family where the method's
// structural preconditions hold.
class SolverForcedMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(SolverForcedMethodTest, ForcedMethodProducesValidColorings) {
  const Method forced = GetParam();
  util::Xoshiro256 rng(29);
  Instance inst = Instance::over(gen::random_out_tree(rng, 16));
  inst.family = gen::random_request_family(rng, *inst.graph, 12);
  SolveOptions options;
  options.force = forced;
  const auto result = core::solve(inst.family, options);
  EXPECT_EQ(result.method, forced);
  EXPECT_TRUE(conflict::is_valid_assignment(inst.family, result.coloring));
  EXPECT_GE(result.wavelengths, result.load);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SolverForcedMethodTest,
                         ::testing::Values(Method::kTheorem1,
                                           Method::kSplitMerge,
                                           Method::kDsatur, Method::kExact),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           // gtest param names must be alphanumeric, so the
                           // display names ("split-merge") are out.
                           switch (info.param) {
                             case Method::kTheorem1: return "Theorem1";
                             case Method::kSplitMerge: return "SplitMerge";
                             case Method::kDsatur: return "Dsatur";
                             case Method::kExact: return "Exact";
                           }
                           return "Unknown";
                         });

// Structural preconditions survive forcing: Theorem 1 refuses hosts with
// internal cycles, split-merge refuses non-UPP hosts.
TEST(SolverDispatchContractTest, ForcedStructuralMethodsCheckTheirDomain) {
  SolveOptions force_t1;
  force_t1.force = Method::kTheorem1;
  EXPECT_THROW(core::solve(gen::figure3_instance().family, force_t1),
               wdag::DomainError);

  SolveOptions force_sm;
  force_sm.force = Method::kSplitMerge;
  EXPECT_THROW(core::solve(gen::figure3_instance().family, force_sm),
               wdag::DomainError);
}

// The exact upgrade must never fire above the cutoff: a conflict graph
// larger than exact_threshold keeps the heuristic method.
TEST(SolverDispatchContractTest, ExactUpgradeRespectsThreshold) {
  const Instance inst = gen::figure1_pathological(12);  // 12-vertex K_12
  SolveOptions options;
  options.exact_threshold = 11;
  const auto result = core::solve(inst.family, options);
  EXPECT_EQ(result.method, Method::kDsatur);
  options.exact_threshold = 12;
  const auto upgraded = core::solve(inst.family, options);
  EXPECT_EQ(upgraded.method, Method::kExact);
  EXPECT_TRUE(upgraded.optimal);
}

}  // namespace
