// Tests for the Theorem 6 split-merge colorer on UPP-DAGs with internal
// cycles.

#include <gtest/gtest.h>

#include "conflict/coloring.hpp"
#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "core/split_merge.hpp"
#include "gen/family_gen.hpp"
#include "gen/paper_instances.hpp"
#include "gen/upp_gen.hpp"
#include "helpers.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using wdag::core::color_upp_split_merge;
using wdag::gen::UppCycleParams;
using wdag::paths::Dipath;
using wdag::paths::DipathFamily;

std::size_t ceil_four_thirds(std::size_t pi) { return (4 * pi + 2) / 3; }

TEST(SplitMergeTest, EmptyFamily) {
  const auto inst = wdag::gen::theorem2_instance(2);
  DipathFamily empty(*inst.graph);
  const auto res = color_upp_split_merge(empty);
  EXPECT_EQ(res.wavelengths, 0u);
  EXPECT_EQ(res.load, 0u);
}

TEST(SplitMergeTest, FallsBackToTheorem1WithoutCycles) {
  const auto g = wdag::test::chain(6);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1, 2}));
  fam.add(Dipath({1, 2, 3}));
  fam.add(Dipath({2, 3, 4}));
  const auto res = color_upp_split_merge(fam);
  EXPECT_EQ(res.wavelengths, res.load);
  EXPECT_EQ(res.levels, 0u);
}

TEST(SplitMergeTest, Theorem2InstancesWithinBound) {
  for (std::size_t k = 2; k <= 6; ++k) {
    const auto inst = wdag::gen::theorem2_instance(k);
    const auto res = color_upp_split_merge(inst.family);
    EXPECT_TRUE(wdag::conflict::is_valid_assignment(inst.family, res.coloring));
    EXPECT_EQ(res.load, 2u);
    EXPECT_GE(res.wavelengths, 3u);  // w == 3 > pi is forced (Theorem 2)
    EXPECT_LE(res.wavelengths, ceil_four_thirds(res.load)) << "k=" << k;
    EXPECT_EQ(res.levels, 1u);
  }
}

TEST(SplitMergeTest, HavetInstanceWithinBound) {
  const auto inst = wdag::gen::havet_instance();
  const auto res = color_upp_split_merge(inst.family);
  EXPECT_TRUE(wdag::conflict::is_valid_assignment(inst.family, res.coloring));
  EXPECT_EQ(res.load, 2u);
  EXPECT_GE(res.wavelengths, 3u);  // chi(V8) == 3
  EXPECT_LE(res.wavelengths, ceil_four_thirds(2));
}

TEST(SplitMergeTest, ReplicatedHavetStaysValid) {
  const auto base = wdag::gen::havet_instance();
  for (std::size_t h : {2u, 3u, 4u}) {
    const auto fam = base.family.replicate(h);
    const auto res = color_upp_split_merge(fam);
    EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));
    EXPECT_EQ(res.load, 2 * h);
    // Lower bound from the independence number of V8 (== 3).
    EXPECT_GE(res.wavelengths, (8 * h + 2) / 3) << "h=" << h;
  }
}

TEST(SplitMergeTest, RejectsNonUpp) {
  const auto inst = wdag::gen::figure3_instance();  // has a double route
  EXPECT_THROW(color_upp_split_merge(inst.family), wdag::DomainError);
}

TEST(SplitMergeTest, RejectsNonDag) {
  const auto g = wdag::test::directed_triangle();
  DipathFamily fam(g);
  fam.add(Dipath({0}));
  EXPECT_THROW(color_upp_split_merge(fam), wdag::DomainError);
}

TEST(SplitMergeTest, MultiCycleChainStaysValid) {
  for (std::size_t cycles : {2u, 3u}) {
    const auto skel =
        wdag::gen::upp_multi_cycle_skeleton(cycles, UppCycleParams{2, 1, 1, 1});
    const auto fam = wdag::gen::all_to_all_family(*skel.graph);
    const auto res = color_upp_split_merge(fam);
    EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));
    EXPECT_EQ(res.levels, cycles);
    EXPECT_GE(res.wavelengths, res.load);
  }
}

// --- Property sweep over random UPP one-cycle instances -------------------

struct SweepParam {
  std::uint64_t seed;
  UppCycleParams gadget;
  std::size_t paths;
};

class SplitMergeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SplitMergeSweep, ValidAndWithinPaperBound) {
  const auto param = GetParam();
  wdag::util::Xoshiro256 rng(param.seed);
  const auto inst =
      wdag::gen::random_upp_one_cycle_instance(rng, param.gadget, param.paths);
  const auto res = color_upp_split_merge(inst.family);

  EXPECT_TRUE(wdag::conflict::is_valid_assignment(inst.family, res.coloring));
  EXPECT_GE(res.wavelengths, res.load);
  // Theorem 6's bound for one internal cycle. These instances have
  // distinct-route dipaths drawn with repetition; the defensive fix-up can
  // only reduce colors relative to the paper's accounting, so the bound
  // must hold.
  EXPECT_LE(res.wavelengths, ceil_four_thirds(res.load))
      << "load=" << res.load << " w=" << res.wavelengths;
  // Exact cross-check on small instances: the true chromatic number obeys
  // the same bound and is sandwiched by load and our result.
  if (inst.family.size() <= 32) {
    const wdag::conflict::ConflictGraph cg(inst.family);
    const auto exact = wdag::conflict::chromatic_number(cg);
    ASSERT_TRUE(exact.proven);
    EXPECT_LE(exact.chromatic_number, res.wavelengths);
    EXPECT_GE(exact.chromatic_number, res.load == 0 ? 0 : 1);
    EXPECT_LE(exact.chromatic_number, ceil_four_thirds(res.load));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomUppOneCycle, SplitMergeSweep,
    ::testing::Values(SweepParam{101, {2, 1, 1, 1}, 10},
                      SweepParam{102, {2, 1, 1, 1}, 20},
                      SweepParam{103, {2, 2, 1, 1}, 15},
                      SweepParam{104, {3, 1, 1, 1}, 15},
                      SweepParam{105, {3, 2, 2, 2}, 25},
                      SweepParam{106, {4, 1, 1, 1}, 20},
                      SweepParam{107, {4, 2, 1, 2}, 30},
                      SweepParam{108, {5, 1, 2, 1}, 25},
                      SweepParam{109, {2, 3, 2, 2}, 30},
                      SweepParam{110, {6, 1, 1, 1}, 40}));

}  // namespace
