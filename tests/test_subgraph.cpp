// Unit tests for induced/arc subgraphs.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "graph/properties.hpp"
#include "graph/subgraph.hpp"
#include "helpers.hpp"

namespace {

using namespace wdag::graph;

TEST(SubgraphTest, InducedKeepsInternalDiamond) {
  const Digraph g = wdag::test::guarded_diamond();
  const auto sub = induced_subgraph(g, internal_vertex_mask(g));
  EXPECT_EQ(sub.graph.num_vertices(), 4u);
  EXPECT_EQ(sub.graph.num_arcs(), 4u);  // the diamond arcs, not the guards
  for (VertexId v = 0; v < sub.graph.num_vertices(); ++v) {
    const VertexId orig = sub.to_parent_vertex[v];
    EXPECT_EQ(sub.from_parent_vertex[orig], v);
  }
}

TEST(SubgraphTest, InducedArcMappingIsConsistent) {
  const Digraph g = wdag::test::guarded_diamond();
  const auto sub = induced_subgraph(g, internal_vertex_mask(g));
  for (ArcId a = 0; a < sub.graph.num_arcs(); ++a) {
    const ArcId orig = sub.to_parent_arc[a];
    EXPECT_EQ(sub.to_parent_vertex[sub.graph.tail(a)], g.tail(orig));
    EXPECT_EQ(sub.to_parent_vertex[sub.graph.head(a)], g.head(orig));
  }
}

TEST(SubgraphTest, EmptyMaskYieldsEmptyGraph) {
  const Digraph g = wdag::test::diamond();
  const auto sub = induced_subgraph(g, std::vector<bool>(4, false));
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
  EXPECT_EQ(sub.graph.num_arcs(), 0u);
}

TEST(SubgraphTest, FullMaskIsIdentity) {
  const Digraph g = wdag::test::diamond();
  const auto sub = induced_subgraph(g, std::vector<bool>(4, true));
  EXPECT_EQ(sub.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(sub.graph.num_arcs(), g.num_arcs());
}

TEST(SubgraphTest, MaskSizeMismatchThrows) {
  const Digraph g = wdag::test::diamond();
  EXPECT_THROW(induced_subgraph(g, std::vector<bool>(3, true)),
               wdag::InvalidArgument);
}

TEST(SubgraphTest, ArcSubgraphKeepsVertices) {
  const Digraph g = wdag::test::diamond();
  std::vector<bool> keep(g.num_arcs(), false);
  keep[0] = true;
  const auto sub = arc_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(sub.graph.num_arcs(), 1u);
  EXPECT_EQ(sub.to_parent_arc[0], 0u);
  EXPECT_EQ(sub.graph.tail(0), g.tail(0));
}

TEST(SubgraphTest, NamesSurviveInduction) {
  DigraphBuilder b;
  b.add_arc("p", "q");
  b.add_arc("q", "r");
  const Digraph g = b.build();
  std::vector<bool> mask = {true, true, false};
  const auto sub = induced_subgraph(g, mask);
  EXPECT_EQ(sub.graph.vertex_label(0), "p");
  EXPECT_EQ(sub.graph.vertex_label(1), "q");
}

}  // namespace
