// util::Subprocess — the child-process primitive under the shard driver:
// spawn/wait round-trips, exit-code plumbing (including the 128+signal
// convention for killed children), non-blocking poll, environment edits,
// and spawn-failure diagnostics.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/subprocess.hpp"

namespace {

using wdag::util::Subprocess;
using wdag::util::SubprocessOptions;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(SubprocessTest, WaitReturnsTheChildExitCode) {
  auto ok = Subprocess::spawn({"/bin/sh", "-c", "exit 0"});
  EXPECT_EQ(ok.wait(), 0);
  auto fail = Subprocess::spawn({"/bin/sh", "-c", "exit 7"});
  EXPECT_EQ(fail.wait(), 7);
}

TEST(SubprocessTest, PollIsNonBlockingAndIdempotentAfterExit) {
  auto child = Subprocess::spawn({"/bin/sh", "-c", "sleep 0.2"});
  // Immediately after spawn the child is almost certainly still alive;
  // either way poll() must not block for the full sleep.
  const auto start = std::chrono::steady_clock::now();
  (void)child.poll();
  const auto first_poll = std::chrono::steady_clock::now() - start;
  EXPECT_LT(first_poll, std::chrono::milliseconds(100));

  while (!child.poll()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(*child.poll(), 0);  // cached after reap
  EXPECT_EQ(child.wait(), 0);
}

TEST(SubprocessTest, KilledChildrenReport128PlusSignal) {
  auto child = Subprocess::spawn({"/bin/sh", "-c", "sleep 30"});
  child.kill();
  EXPECT_EQ(child.wait(), 128 + SIGKILL);
  child.kill();  // safe after exit
  EXPECT_EQ(child.wait(), 128 + SIGKILL);
}

TEST(SubprocessTest, EnvEditsReachTheChild) {
  const std::string path = testing::TempDir() + "/wdag_subproc_env.txt";
  SubprocessOptions options;
  options.env = {{"WDAG_TEST_SET", "alpha"}};
  options.unset_env = {"WDAG_TEST_UNSET"};
  ::setenv("WDAG_TEST_UNSET", "should-vanish", 1);
  ::setenv("WDAG_TEST_INHERIT", "kept", 1);
  auto child = Subprocess::spawn(
      {"/bin/sh", "-c",
       "printf '%s|%s|%s' \"$WDAG_TEST_SET\" \"$WDAG_TEST_UNSET\" "
       "\"$WDAG_TEST_INHERIT\" > " + path},
      options);
  EXPECT_EQ(child.wait(), 0);
  EXPECT_EQ(slurp(path), "alpha||kept");
  ::unsetenv("WDAG_TEST_UNSET");
  ::unsetenv("WDAG_TEST_INHERIT");
}

TEST(SubprocessTest, SpawnFailureThrows) {
  EXPECT_THROW(
      (void)Subprocess::spawn({"/nonexistent/wdag-no-such-binary"}),
      wdag::InternalError);
  EXPECT_THROW((void)Subprocess::spawn({}), wdag::InvalidArgument);
}

TEST(SubprocessTest, MoveTransfersOwnership) {
  auto child = Subprocess::spawn({"/bin/sh", "-c", "exit 3"});
  Subprocess moved = std::move(child);
  EXPECT_EQ(moved.wait(), 3);
}

// ---------------------------------------------------------------------------
// Durability helpers under the drive journal / atomic output commit.
// ---------------------------------------------------------------------------

TEST(FsDurabilityTest, WriteFileAtomicWritesAndReplaces) {
  const std::string path = testing::TempDir() + "/wdag_atomic.txt";
  wdag::util::write_file_atomic(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  wdag::util::write_file_atomic(path, "second\n");
  EXPECT_EQ(slurp(path), "second\n");
  // The staging file was renamed away, never left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

TEST(FsDurabilityTest, CommitFileRenamesIntoPlace) {
  const std::string tmp = testing::TempDir() + "/wdag_commit.csv.tmp";
  const std::string final_path = testing::TempDir() + "/wdag_commit.csv";
  std::remove(final_path.c_str());
  std::ofstream(tmp, std::ios::binary) << "rows\n";
  wdag::util::commit_file(tmp, final_path);
  EXPECT_EQ(slurp(final_path), "rows\n");
  EXPECT_FALSE(std::ifstream(tmp).good());
  // A vanished staging file cannot be committed.
  EXPECT_THROW(wdag::util::commit_file(tmp, final_path),
               wdag::InternalError);
}

TEST(FsDurabilityTest, DurableAppendFileAppendsAcrossReopens) {
  const std::string path = testing::TempDir() + "/wdag_journal.jsonl";
  {
    wdag::util::DurableAppendFile f(path, /*truncate=*/true);
    ASSERT_TRUE(f.is_open());
    f.append_line("one");
  }
  {
    wdag::util::DurableAppendFile f(path);  // reopen keeps prior lines
    f.append_line("two");
  }
  EXPECT_EQ(slurp(path), "one\ntwo\n");

  // A torn tail (crash mid-append) is terminated on reopen so the next
  // line never concatenates onto the fragment.
  std::ofstream(path, std::ios::binary | std::ios::app) << "torn";
  {
    wdag::util::DurableAppendFile f(path);
    f.append_line("three");
  }
  EXPECT_EQ(slurp(path), "one\ntwo\ntorn\nthree\n");

  // Truncate mode starts empty.
  {
    wdag::util::DurableAppendFile f(path, /*truncate=*/true);
    f.append_line("fresh");
  }
  EXPECT_EQ(slurp(path), "fresh\n");
}

}  // namespace
