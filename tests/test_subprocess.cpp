// util::Subprocess — the child-process primitive under the shard driver:
// spawn/wait round-trips, exit-code plumbing (including the 128+signal
// convention for killed children), non-blocking poll, environment edits,
// and spawn-failure diagnostics.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/subprocess.hpp"

namespace {

using wdag::util::Subprocess;
using wdag::util::SubprocessOptions;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(SubprocessTest, WaitReturnsTheChildExitCode) {
  auto ok = Subprocess::spawn({"/bin/sh", "-c", "exit 0"});
  EXPECT_EQ(ok.wait(), 0);
  auto fail = Subprocess::spawn({"/bin/sh", "-c", "exit 7"});
  EXPECT_EQ(fail.wait(), 7);
}

TEST(SubprocessTest, PollIsNonBlockingAndIdempotentAfterExit) {
  auto child = Subprocess::spawn({"/bin/sh", "-c", "sleep 0.2"});
  // Immediately after spawn the child is almost certainly still alive;
  // either way poll() must not block for the full sleep.
  const auto start = std::chrono::steady_clock::now();
  (void)child.poll();
  const auto first_poll = std::chrono::steady_clock::now() - start;
  EXPECT_LT(first_poll, std::chrono::milliseconds(100));

  while (!child.poll()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(*child.poll(), 0);  // cached after reap
  EXPECT_EQ(child.wait(), 0);
}

TEST(SubprocessTest, KilledChildrenReport128PlusSignal) {
  auto child = Subprocess::spawn({"/bin/sh", "-c", "sleep 30"});
  child.kill();
  EXPECT_EQ(child.wait(), 128 + SIGKILL);
  child.kill();  // safe after exit
  EXPECT_EQ(child.wait(), 128 + SIGKILL);
}

TEST(SubprocessTest, EnvEditsReachTheChild) {
  const std::string path = testing::TempDir() + "/wdag_subproc_env.txt";
  SubprocessOptions options;
  options.env = {{"WDAG_TEST_SET", "alpha"}};
  options.unset_env = {"WDAG_TEST_UNSET"};
  ::setenv("WDAG_TEST_UNSET", "should-vanish", 1);
  ::setenv("WDAG_TEST_INHERIT", "kept", 1);
  auto child = Subprocess::spawn(
      {"/bin/sh", "-c",
       "printf '%s|%s|%s' \"$WDAG_TEST_SET\" \"$WDAG_TEST_UNSET\" "
       "\"$WDAG_TEST_INHERIT\" > " + path},
      options);
  EXPECT_EQ(child.wait(), 0);
  EXPECT_EQ(slurp(path), "alpha||kept");
  ::unsetenv("WDAG_TEST_UNSET");
  ::unsetenv("WDAG_TEST_INHERIT");
}

TEST(SubprocessTest, SpawnFailureThrows) {
  EXPECT_THROW(
      (void)Subprocess::spawn({"/nonexistent/wdag-no-such-binary"}),
      wdag::InternalError);
  EXPECT_THROW((void)Subprocess::spawn({}), wdag::InvalidArgument);
}

TEST(SubprocessTest, MoveTransfersOwnership) {
  auto child = Subprocess::spawn({"/bin/sh", "-c", "exit 3"});
  Subprocess moved = std::move(child);
  EXPECT_EQ(moved.wait(), 3);
}

}  // namespace
