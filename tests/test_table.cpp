// Unit tests for the results-table renderer.

#include <gtest/gtest.h>

#include <string>

#include "util/check.hpp"
#include "util/table.hpp"

namespace {

using wdag::util::Cell;
using wdag::util::Table;

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW(Table("t", {}), wdag::InvalidArgument);
}

TEST(TableTest, RowWidthMustMatch) {
  Table t("t", {"a", "b"});
  EXPECT_THROW(t.add_row({Cell{1LL}}), wdag::InvalidArgument);
  t.add_row({Cell{1LL}, Cell{2LL}});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TableTest, TextContainsTitleHeaderAndCells) {
  Table t("My Title", {"k", "pi", "w"});
  t.add_row({Cell{2LL}, Cell{2LL}, Cell{3LL}});
  const std::string s = t.to_text();
  EXPECT_NE(s.find("My Title"), std::string::npos);
  EXPECT_NE(s.find("pi"), std::string::npos);
  EXPECT_NE(s.find("3"), std::string::npos);
}

TEST(TableTest, CsvIsParseable) {
  Table t("x", {"name", "value"});
  t.add_row({Cell{std::string("alpha")}, Cell{1.5}});
  t.add_row({Cell{std::string("has,comma")}, Cell{2LL}});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
}

TEST(TableTest, CsvEscapesQuotes) {
  Table t("", {"v"});
  t.add_row({Cell{std::string("say \"hi\"")}});
  EXPECT_NE(t.to_csv().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, MarkdownShape) {
  Table t("T", {"a", "b"});
  t.add_row({Cell{1LL}, Cell{2LL}});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(TableTest, JsonRowsShape) {
  Table t("ignored title", {"name", "count", "ratio"});
  t.add_row({Cell{std::string("grid")}, Cell{3LL}, Cell{0.5}});
  t.add_row({Cell{std::string("tree")}, Cell{7LL}, Cell{1.0}});
  EXPECT_EQ(t.to_json_rows(),
            "[{\"name\":\"grid\",\"count\":3,\"ratio\":0.5},"
            "{\"name\":\"tree\",\"count\":7,\"ratio\":1.0}]");
}

TEST(TableTest, JsonRowsEscapesStrings) {
  Table t("", {"v"});
  t.add_row({Cell{std::string("say \"hi\"\nback\\slash")}});
  EXPECT_EQ(t.to_json_rows(),
            "[{\"v\":\"say \\\"hi\\\"\\nback\\\\slash\"}]");
}

TEST(TableTest, JsonRowsEmptyTable) {
  Table t("T", {"a"});
  EXPECT_EQ(t.to_json_rows(), "[]");
}

TEST(CellToStringTest, TrimsTrailingZeros) {
  EXPECT_EQ(wdag::util::cell_to_string(Cell{1.5}), "1.5");
  EXPECT_EQ(wdag::util::cell_to_string(Cell{2.0}), "2.0");
  EXPECT_EQ(wdag::util::cell_to_string(Cell{0.3333333}), "0.3333");
  EXPECT_EQ(wdag::util::cell_to_string(Cell{7LL}), "7");
  EXPECT_EQ(wdag::util::cell_to_string(Cell{std::string("s")}), "s");
}

}  // namespace
