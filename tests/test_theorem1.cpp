// Tests for the Theorem 1 constructive colorer: w == pi on DAGs without
// internal cycle, for EVERY family of dipaths.

#include <gtest/gtest.h>

#include <set>

#include "conflict/conflict_graph.hpp"
#include "conflict/exact_color.hpp"
#include "core/theorem1.hpp"
#include "gen/family_gen.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "helpers.hpp"
#include "paths/load.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using wdag::core::color_equal_load;
using wdag::paths::Dipath;
using wdag::paths::DipathFamily;

TEST(Theorem1Test, EmptyFamily) {
  const auto g = wdag::test::chain(3);
  const auto res = color_equal_load(DipathFamily(g));
  EXPECT_EQ(res.wavelengths, 0u);
  EXPECT_EQ(res.load, 0u);
  EXPECT_TRUE(res.coloring.empty());
}

TEST(Theorem1Test, SinglePath) {
  const auto g = wdag::test::chain(5);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1, 2, 3}));
  const auto res = color_equal_load(fam);
  EXPECT_EQ(res.wavelengths, 1u);
  EXPECT_EQ(res.load, 1u);
}

TEST(Theorem1Test, StackedIntervalsOnAChain) {
  // Interval-graph coloring on a path: heavy overlap in the middle.
  const auto g = wdag::test::chain(8);
  DipathFamily fam(g);
  fam.add(Dipath({0, 1, 2, 3}));
  fam.add(Dipath({2, 3, 4}));
  fam.add(Dipath({3, 4, 5, 6}));
  fam.add(Dipath({1, 2, 3, 4, 5}));
  fam.add(Dipath({6}));
  const auto res = color_equal_load(fam);
  EXPECT_EQ(res.load, 4u);  // arc 3 carries paths 0, 1, 2 and 3
  EXPECT_EQ(res.wavelengths, 4u);
  EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));
}

TEST(Theorem1Test, IdenticalCopiesGetDistinctColors) {
  const auto g = wdag::test::chain(4);
  DipathFamily fam(g);
  for (int i = 0; i < 4; ++i) fam.add(Dipath({1, 2}));
  const auto res = color_equal_load(fam);
  EXPECT_EQ(res.load, 4u);
  EXPECT_EQ(res.wavelengths, 4u);
  std::set<std::uint32_t> colors(res.coloring.begin(), res.coloring.end());
  EXPECT_EQ(colors.size(), 4u);
}

TEST(Theorem1Test, DiamondMulticommodity) {
  // The plain diamond has an oriented cycle but no internal one, so the
  // equality still holds there.
  const auto g = wdag::test::diamond();
  DipathFamily fam(g);
  fam.add(Dipath({g.find_arc(0, 1), g.find_arc(1, 3)}));
  fam.add(Dipath({g.find_arc(0, 2), g.find_arc(2, 3)}));
  fam.add(Dipath({g.find_arc(0, 1)}));
  fam.add(Dipath({g.find_arc(2, 3)}));
  const auto res = color_equal_load(fam);
  EXPECT_EQ(res.load, 2u);
  EXPECT_EQ(res.wavelengths, 2u);
}

TEST(Theorem1Test, RejectsInternalCycleGraphs) {
  const auto inst = wdag::gen::figure3_instance();
  EXPECT_THROW(color_equal_load(inst.family), wdag::DomainError);
}

TEST(Theorem1Test, RejectsNonDags) {
  const auto g = wdag::test::directed_triangle();
  DipathFamily fam(g);
  fam.add(Dipath({0}));
  EXPECT_THROW(color_equal_load(fam), wdag::DomainError);
}

TEST(Theorem1Test, RootedTreeMulticastEqualsLoad) {
  // The paper's §1 remark: for rooted trees w == pi for any family.
  wdag::util::Xoshiro256 rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = wdag::gen::random_out_tree(rng, 40);
    const auto fam = wdag::gen::multicast_family(g, 0);
    const auto res = color_equal_load(fam);
    EXPECT_EQ(res.wavelengths, res.load);
    EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));
  }
}

TEST(Theorem1Test, EqualityOnRandomTreeWalks) {
  wdag::util::Xoshiro256 rng(43);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = wdag::gen::random_out_tree(rng, 30);
    const auto fam = wdag::gen::random_walk_family(rng, g, 25, 1, 8);
    const auto res = color_equal_load(fam);
    EXPECT_EQ(res.wavelengths, wdag::paths::max_load(fam));
    EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));
  }
}

// --- Property sweep: random internal-cycle-free DAGs ----------------------

struct SweepParam {
  std::uint64_t seed;
  std::size_t n;
  double p;
  std::size_t paths;
};

class Theorem1Sweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Theorem1Sweep, WavelengthsEqualLoadAndMatchExactChromatic) {
  const auto param = GetParam();
  wdag::util::Xoshiro256 rng(param.seed);
  const auto g =
      wdag::gen::random_no_internal_cycle_dag(rng, param.n, param.p);
  if (g.num_arcs() == 0) GTEST_SKIP() << "degenerate draw";
  const auto fam =
      wdag::gen::random_walk_family(rng, g, param.paths, 1, 6);
  const auto res = color_equal_load(fam);

  // Constructive equality.
  EXPECT_EQ(res.wavelengths, res.load);
  EXPECT_TRUE(wdag::conflict::is_valid_assignment(fam, res.coloring));

  // Certify optimality against the exact chromatic number when feasible.
  if (fam.size() <= 40) {
    const wdag::conflict::ConflictGraph cg(fam);
    const auto exact = wdag::conflict::chromatic_number(cg);
    ASSERT_TRUE(exact.proven);
    EXPECT_EQ(exact.chromatic_number, res.wavelengths)
        << "Theorem 1 result is not the true chromatic number";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomNoInternalCycle, Theorem1Sweep,
    ::testing::Values(SweepParam{1, 12, 0.15, 10}, SweepParam{2, 12, 0.3, 15},
                      SweepParam{3, 18, 0.12, 20}, SweepParam{4, 18, 0.25, 25},
                      SweepParam{5, 24, 0.1, 20}, SweepParam{6, 24, 0.2, 30},
                      SweepParam{7, 30, 0.08, 25}, SweepParam{8, 30, 0.15, 35},
                      SweepParam{9, 40, 0.06, 30}, SweepParam{10, 40, 0.1, 40},
                      SweepParam{11, 15, 0.4, 40}, SweepParam{12, 20, 0.35, 50},
                      SweepParam{13, 50, 0.05, 30}, SweepParam{14, 10, 0.5, 60},
                      SweepParam{15, 60, 0.04, 45}));

TEST(Theorem1Test, ChainRecoloringsAreCountedAndBounded) {
  // A construction that forces at least one alpha/beta chain would be
  // fragile to pin down; instead check the stats fields are consistent.
  wdag::util::Xoshiro256 rng(99);
  const auto g = wdag::gen::random_no_internal_cycle_dag(rng, 30, 0.2);
  const auto fam = wdag::gen::random_walk_family(rng, g, 50, 1, 8);
  const auto res = color_equal_load(fam);
  EXPECT_LE(res.chain_recolorings, 50u * g.num_arcs());
  if (res.chain_recolorings == 0) {
    EXPECT_EQ(res.paths_flipped, 0u);
  }
  if (res.paths_flipped > 0) {
    EXPECT_GE(res.paths_flipped, res.chain_recolorings);
  }
}

}  // namespace
