// Unit tests for the thread pool and parallel_for.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace {

using wdag::util::parallel_for;
using wdag::util::parallel_for_chunks;
using wdag::util::ThreadPool;

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, DefaultSizeIsPositive) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, SumMatchesSerial) {
  constexpr std::size_t n = 5000;
  std::atomic<long long> sum{0};
  parallel_for(0, n, [&](std::size_t i) { sum.fetch_add(static_cast<long long>(i)); });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelForTest, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 1000,
                   [&](std::size_t i) {
                     if (i == 517) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelForChunksTest, ChunksPartitionTheRange) {
  constexpr std::size_t n = 1234;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForChunksTest, GrainLimitsChunkCount) {
  std::atomic<int> chunks{0};
  parallel_for_chunks(
      0, 100,
      [&](std::size_t, std::size_t) { chunks.fetch_add(1); },
      /*grain=*/100);
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ParallelFixedChunksTest, PartitionDependsOnlyOnChunkSize) {
  // The fixed partition is the determinism anchor of the batch engine: a
  // chunk index must cover the same index range on a 1-thread and an
  // 8-thread pool.
  auto partition_of = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(4);
    wdag::util::parallel_fixed_chunks(
        pool, 0, 10, 3,
        [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
          ranges[chunk] = {lo, hi};
        });
    return ranges;
  };
  const auto one = partition_of(1);
  const auto eight = partition_of(8);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one[0], (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(one[3], (std::pair<std::size_t, std::size_t>{9, 10}));
}

TEST(ParallelFixedChunksTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  wdag::util::parallel_fixed_chunks(
      pool, 0, 257, 16, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFixedChunksTest, RethrowsFirstChunkError) {
  ThreadPool pool(2);
  EXPECT_THROW(wdag::util::parallel_fixed_chunks(
                   pool, 0, 8, 2,
                   [](std::size_t chunk, std::size_t, std::size_t) {
                     if (chunk == 1) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // The pool is still usable after the failed loop.
  std::atomic<int> ok{0};
  wdag::util::parallel_fixed_chunks(
      pool, 0, 4, 1,
      [&](std::size_t, std::size_t, std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ParallelFixedChunksTest, EmptyRangeAndBadChunkSize) {
  ThreadPool pool(2);
  int calls = 0;
  wdag::util::parallel_fixed_chunks(
      pool, 5, 5, 4,
      [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_THROW(wdag::util::parallel_fixed_chunks(
                   pool, 0, 4, 0,
                   [](std::size_t, std::size_t, std::size_t) {}),
               wdag::InvalidArgument);
}

TEST(ThreadPoolTest, ForEachWorkerRunsExactlyOncePerWorker) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::size_t> seen;
  pool.for_each_worker([&](std::size_t worker) {
    const std::lock_guard<std::mutex> lock(mu);
    seen.push_back(worker);
  });
  // One visit per worker, each with a distinct index 0..3 — the property
  // the NUMA first-touch hook relies on (api::Engine warms per-worker
  // arenas through this).
  ASSERT_EQ(seen.size(), 4u);
  std::sort(seen.begin(), seen.end());
  for (std::size_t w = 0; w < seen.size(); ++w) EXPECT_EQ(seen[w], w);
}

TEST(ThreadPoolTest, ForEachWorkerPropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each_worker([](std::size_t worker) {
                 if (worker == 0) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The pool survives: later work still runs.
  std::atomic<int> ran{0};
  pool.for_each_worker([&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ParallelForTest, NestedParallelismDoesNotDeadlock) {
  // Inner calls run on the same global pool; the implementation must not
  // block a worker waiting for tasks that need that worker.
  std::atomic<int> total{0};
  parallel_for_chunks(
      0, 4,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          total.fetch_add(static_cast<int>(i));
        }
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 0 + 1 + 2 + 3);
}

}  // namespace
