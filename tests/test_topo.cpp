// Unit tests for topological ordering utilities.

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.hpp"
#include "gen/random_dag.hpp"
#include "graph/topo.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace {

using wdag::graph::arcs_in_tail_topo_order;
using wdag::graph::Digraph;
using wdag::graph::is_dag;
using wdag::graph::topo_positions;
using wdag::graph::topological_sort;

void expect_valid_topo(const Digraph& g, const std::vector<wdag::graph::VertexId>& order) {
  const auto pos = topo_positions(g, order);
  for (const auto& arc : g.arcs()) {
    EXPECT_LT(pos[arc.tail], pos[arc.head]);
  }
}

TEST(TopoTest, ChainOrder) {
  const Digraph g = wdag::test::chain(6);
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  expect_valid_topo(g, *order);
}

TEST(TopoTest, DiamondOrder) {
  const Digraph g = wdag::test::diamond();
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  expect_valid_topo(g, *order);
}

TEST(TopoTest, CycleDetected) {
  EXPECT_FALSE(topological_sort(wdag::test::directed_triangle()).has_value());
  EXPECT_FALSE(is_dag(wdag::test::directed_triangle()));
}

TEST(TopoTest, IsDagOnDags) {
  EXPECT_TRUE(is_dag(wdag::test::chain(5)));
  EXPECT_TRUE(is_dag(wdag::test::diamond()));
  EXPECT_TRUE(is_dag(wdag::test::binary_out_tree(3)));
}

TEST(TopoTest, EmptyAndSingleton) {
  const Digraph empty = wdag::graph::DigraphBuilder().build();
  ASSERT_TRUE(topological_sort(empty).has_value());
  EXPECT_TRUE(topological_sort(empty)->empty());
  const Digraph one = wdag::graph::DigraphBuilder(1).build();
  ASSERT_EQ(topological_sort(one)->size(), 1u);
}

TEST(TopoTest, TopoPositionsIsInverse) {
  const Digraph g = wdag::test::diamond();
  const auto order = *topological_sort(g);
  const auto pos = topo_positions(g, order);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(pos[order[i]], i);
}

TEST(TopoTest, ArcsInTailTopoOrderContainsAllArcs) {
  const Digraph g = wdag::test::guarded_diamond();
  const auto arcs = arcs_in_tail_topo_order(g);
  EXPECT_EQ(arcs.size(), g.num_arcs());
  auto sorted = arcs;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(TopoTest, ArcsInTailTopoOrderRemovalInvariant) {
  // Removing arcs in the returned order, the tail of the arc removed next
  // must always be a source of the remaining graph — the Theorem-1
  // induction's requirement.
  wdag::util::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const Digraph g = wdag::gen::random_dag(rng, 30, 0.15);
    const auto order = arcs_in_tail_topo_order(g);
    std::vector<std::size_t> indeg(g.num_vertices(), 0);
    for (const auto& arc : g.arcs()) ++indeg[arc.head];
    for (const auto a : order) {
      EXPECT_EQ(indeg[g.tail(a)], 0u)
          << "arc " << a << " removed while its tail still has indegree";
      --indeg[g.head(a)];
    }
  }
}

TEST(TopoTest, ArcsInTailTopoOrderRejectsCycles) {
  EXPECT_THROW(arcs_in_tail_topo_order(wdag::test::directed_triangle()),
               wdag::InvalidArgument);
}

TEST(TopoTest, RandomDagsAlwaysSort) {
  wdag::util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const Digraph g = wdag::gen::random_dag(rng, 40, 0.1);
    const auto order = topological_sort(g);
    ASSERT_TRUE(order.has_value());
    expect_valid_topo(g, *order);
  }
}

}  // namespace
