// Tests for the classic-topology generators and their paper-taxonomy
// placement.

#include <gtest/gtest.h>

#include "dag/classify.hpp"
#include "dag/internal_cycle.hpp"
#include "dag/upp.hpp"
#include "gen/topologies.hpp"
#include "graph/properties.hpp"
#include "graph/reachability.hpp"
#include "graph/topo.hpp"
#include "util/check.hpp"

namespace {

using namespace wdag::gen;

TEST(ButterflyTest, Shape) {
  for (std::size_t k : {1u, 2u, 3u, 4u}) {
    const auto g = butterfly(k);
    const std::size_t row = std::size_t{1} << k;
    EXPECT_EQ(g.num_vertices(), row * (k + 1));
    EXPECT_EQ(g.num_arcs(), 2 * row * k);
    EXPECT_TRUE(wdag::graph::is_dag(g));
  }
}

TEST(ButterflyTest, IsUpp) {
  for (std::size_t k : {1u, 2u, 3u}) {
    EXPECT_TRUE(wdag::dag::is_upp(butterfly(k))) << "k=" << k;
  }
}

TEST(ButterflyTest, RegimeBoundaryAtKThree) {
  EXPECT_FALSE(wdag::dag::has_internal_cycle(butterfly(1)));
  EXPECT_FALSE(wdag::dag::has_internal_cycle(butterfly(2)));
  EXPECT_TRUE(wdag::dag::has_internal_cycle(butterfly(3)));
  EXPECT_TRUE(wdag::dag::has_internal_cycle(butterfly(4)));
}

TEST(ButterflyTest, EveryLevel0ReachesEveryTopLevel) {
  const auto g = butterfly(3);
  // Level 0 vertex 0 must reach all 8 level-3 vertices (bit fixing).
  const auto reach = wdag::graph::descendants(g, 0);
  for (std::size_t x = 0; x < 8; ++x) {
    EXPECT_TRUE(reach.test(3 * 8 + x)) << x;
  }
}

TEST(GridTest, ShapeAndClassification) {
  const auto g = grid_dag(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_arcs(), 31u);  // 4 rows x 4 right + 3 x 5 down
  EXPECT_TRUE(wdag::graph::is_dag(g));
  const auto r = wdag::dag::classify(g);
  EXPECT_FALSE(r.is_upp);            // Manhattan paths commute
  EXPECT_GT(r.internal_cycles, 0u);  // inner faces
}

TEST(GridTest, DegenerateRowsAndCols) {
  // A 1 x n grid is a chain: UPP, no internal cycle.
  const auto r = wdag::dag::classify(grid_dag(1, 6));
  EXPECT_TRUE(r.is_upp);
  EXPECT_TRUE(r.wavelengths_equal_load());
}

TEST(FatChainTest, CycleBudget) {
  for (std::size_t stages : {1u, 3u}) {
    for (std::size_t width : {1u, 2u, 4u}) {
      const auto g = fat_chain(stages, width);
      EXPECT_EQ(wdag::dag::internal_cycle_count(g), stages * (width - 1))
          << stages << "x" << width;
      EXPECT_EQ(wdag::dag::is_upp(g), width == 1);
    }
  }
}

TEST(SpineTest, AlwaysCleanRegime) {
  for (std::size_t n : {2u, 5u, 12u}) {
    const auto r = wdag::dag::classify(spine_with_leaves(n));
    EXPECT_TRUE(r.wavelengths_equal_load()) << n;
    EXPECT_TRUE(r.is_upp);
  }
}

TEST(TopologiesTest, Validation) {
  EXPECT_THROW(butterfly(0), wdag::InvalidArgument);
  EXPECT_THROW(grid_dag(0, 3), wdag::InvalidArgument);
  EXPECT_THROW(fat_chain(0, 2), wdag::InvalidArgument);
  EXPECT_THROW(spine_with_leaves(1), wdag::InvalidArgument);
}

}  // namespace
