// Unit tests for the disjoint-set forest.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/union_find.hpp"

namespace {

using wdag::util::UnionFind;

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFindTest, UniteMergesAndReports) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
}

TEST(UnionFindTest, RepeatedUniteReturnsFalse) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFindTest, TransitiveUnion) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  EXPECT_FALSE(uf.same(1, 2));
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_EQ(uf.num_sets(), 3u);  // {0,1,2,3} {4} {5}
}

TEST(UnionFindTest, CycleDetectionPattern) {
  // The internal-cycle detector relies on "unite returns false iff the
  // edge closes a cycle": a triangle's third edge must return false.
  UnionFind uf(3);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(2, 0));
}

TEST(UnionFindTest, ResetRestoresSingletons) {
  UnionFind uf(3);
  uf.unite(0, 1);
  uf.reset(4);
  EXPECT_EQ(uf.size(), 4u);
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_FALSE(uf.same(0, 1));
}

TEST(UnionFindTest, OutOfRangeThrows) {
  UnionFind uf(2);
  EXPECT_THROW((void)uf.find(2), wdag::InvalidArgument);
}

TEST(UnionFindTest, LargeChainCollapses) {
  constexpr std::size_t n = 10000;
  UnionFind uf(n);
  for (std::size_t i = 0; i + 1 < n; ++i) EXPECT_TRUE(uf.unite(i, i + 1));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.same(0, n - 1));
}

}  // namespace
