// Unit tests for the Unique-diPath Property.

#include <gtest/gtest.h>

#include "dag/upp.hpp"
#include "gen/paper_instances.hpp"
#include "gen/random_dag.hpp"
#include "helpers.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag::dag;
using wdag::graph::Digraph;
using wdag::graph::DigraphBuilder;

TEST(CountDipathsTest, ChainCounts) {
  const Digraph g = wdag::test::chain(5);
  EXPECT_EQ(count_dipaths(g, 0, 4), 1u);
  EXPECT_EQ(count_dipaths(g, 4, 0), 0u);
  EXPECT_EQ(count_dipaths(g, 2, 2), 1u);  // the empty dipath
}

TEST(CountDipathsTest, DiamondHasTwo) {
  const Digraph g = wdag::test::diamond();
  EXPECT_EQ(count_dipaths(g, 0, 3), 2u);
  EXPECT_EQ(count_dipaths(g, 0, 3, /*cap=*/10), 2u);
}

TEST(CountDipathsTest, SaturatesAtCap) {
  // Three stacked diamonds: 2^3 = 8 paths, capped at 3.
  DigraphBuilder b;
  wdag::graph::VertexId cur = b.add_vertex();
  for (int d = 0; d < 3; ++d) {
    const auto l = b.add_vertex(), r = b.add_vertex(), m = b.add_vertex();
    b.add_arc(cur, l);
    b.add_arc(cur, r);
    b.add_arc(l, m);
    b.add_arc(r, m);
    cur = m;
  }
  const Digraph g = b.build();
  EXPECT_EQ(count_dipaths(g, 0, cur, 3), 3u);
  EXPECT_EQ(count_dipaths(g, 0, cur, 100), 8u);
}

TEST(CountDipathsTest, RejectsNonDag) {
  EXPECT_THROW(count_dipaths(wdag::test::directed_triangle(), 0, 1),
               wdag::DomainError);
}

TEST(IsUppTest, TreesAndChainsAreUpp) {
  EXPECT_TRUE(is_upp(wdag::test::chain(8)));
  EXPECT_TRUE(is_upp(wdag::test::binary_out_tree(4)));
}

TEST(IsUppTest, DiamondIsNotUpp) {
  EXPECT_FALSE(is_upp(wdag::test::diamond()));
}

TEST(IsUppTest, ParallelArcsAreNotUpp) {
  DigraphBuilder b(2);
  b.add_arc(0, 1);
  b.add_arc(0, 1);
  EXPECT_FALSE(is_upp(b.build()));
}

TEST(IsUppTest, PaperInstances) {
  EXPECT_TRUE(is_upp(*wdag::gen::theorem2_instance(2).graph));
  EXPECT_TRUE(is_upp(*wdag::gen::theorem2_instance(5).graph));
  EXPECT_TRUE(is_upp(*wdag::gen::havet_instance().graph));
  // Figure 3 has the chord b->d next to b->c->d: not UPP.
  EXPECT_FALSE(is_upp(*wdag::gen::figure3_instance().graph));
  // k == 1 theorem-2 gadget degenerates to parallel arcs: not UPP.
  EXPECT_FALSE(is_upp(*wdag::gen::theorem2_instance(1).graph));
}

TEST(IsUppTest, RejectsNonDag) {
  EXPECT_THROW(is_upp(wdag::test::directed_triangle()), wdag::DomainError);
}

TEST(UppViolationTest, NoneOnUppGraphs) {
  EXPECT_FALSE(find_upp_violation(wdag::test::chain(5)).has_value());
  EXPECT_FALSE(
      find_upp_violation(*wdag::gen::havet_instance().graph).has_value());
}

TEST(UppViolationTest, DiamondWitness) {
  const Digraph g = wdag::test::diamond();
  const auto v = find_upp_violation(g);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->from, 0u);
  EXPECT_EQ(v->to, 3u);
  EXPECT_NE(v->path1, v->path2);
  // Both witnesses really go from 0 to 3.
  for (const auto* p : {&v->path1, &v->path2}) {
    ASSERT_FALSE(p->empty());
    EXPECT_EQ(g.tail(p->front()), 0u);
    EXPECT_EQ(g.head(p->back()), 3u);
  }
}

TEST(UppViolationTest, AgreesWithIsUppOnRandomGraphs) {
  wdag::util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Digraph g = wdag::gen::random_dag(rng, 18, 0.15);
    EXPECT_EQ(is_upp(g), !find_upp_violation(g).has_value());
  }
}

TEST(IsUppTest, EmptyAndSingletonGraphs) {
  EXPECT_TRUE(is_upp(DigraphBuilder().build()));
  EXPECT_TRUE(is_upp(DigraphBuilder(1).build()));
}

}  // namespace
