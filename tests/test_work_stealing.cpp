// Unit tests for the Chase-Lev deque and the work-stealing chunk driver
// (util/work_stealing.hpp): deque end semantics, exactly-once execution
// under concurrent stealing, range plumbing, and exception propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/work_stealing.hpp"

namespace {

using wdag::util::ChaseLevDeque;
using wdag::util::ChunkRange;
using wdag::util::parallel_stealing_chunks;
using wdag::util::ThreadPool;

TEST(ChaseLevDequeTest, PopIsLifoStealIsFifo) {
  ChaseLevDeque dq(8);
  for (std::size_t i = 1; i <= 3; ++i) dq.push(i);

  std::size_t item = 0;
  ASSERT_TRUE(dq.steal(item));  // oldest first from the top
  EXPECT_EQ(item, 1u);
  ASSERT_TRUE(dq.pop(item));  // newest first from the bottom
  EXPECT_EQ(item, 3u);
  ASSERT_TRUE(dq.pop(item));
  EXPECT_EQ(item, 2u);
  EXPECT_FALSE(dq.pop(item));
  EXPECT_FALSE(dq.steal(item));
}

TEST(ChaseLevDequeTest, InterleavedPushPopStaysConsistent) {
  ChaseLevDeque dq(16);
  std::size_t item = 0;
  EXPECT_FALSE(dq.pop(item));
  dq.push(10);
  ASSERT_TRUE(dq.pop(item));
  EXPECT_EQ(item, 10u);
  EXPECT_FALSE(dq.pop(item));
  dq.push(11);
  dq.push(12);
  ASSERT_TRUE(dq.steal(item));
  EXPECT_EQ(item, 11u);
  ASSERT_TRUE(dq.pop(item));
  EXPECT_EQ(item, 12u);
  EXPECT_FALSE(dq.steal(item));
}

TEST(ChaseLevDequeTest, ConcurrentOwnerAndThievesTakeEachItemExactlyOnce) {
  constexpr std::size_t kItems = 20000;
  constexpr std::size_t kThieves = 3;
  ChaseLevDeque dq(kItems);
  std::vector<std::atomic<int>> taken(kItems);
  std::atomic<std::size_t> remaining{kItems};

  // The owner (this thread) pushes everything up front — the same shape
  // the scheduler uses — then drains its own bottom end while the
  // thieves hammer the top.
  for (std::size_t i = 0; i < kItems; ++i) dq.push(i);

  std::vector<std::thread> thieves;
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::size_t item = 0;
      while (remaining.load(std::memory_order_acquire) > 0) {
        if (dq.steal(item)) {
          taken[item].fetch_add(1, std::memory_order_relaxed);
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  std::size_t item = 0;
  while (remaining.load(std::memory_order_acquire) > 0) {
    if (dq.pop(item)) {
      taken[item].fetch_add(1, std::memory_order_relaxed);
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  for (auto& thief : thieves) thief.join();

  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(taken[i].load(), 1) << "item " << i;
  }
}

TEST(ParallelStealingChunksTest, ExecutesEveryChunkExactlyOnceWithItsRange) {
  ThreadPool pool(4);
  // Irregular tail: 10 chunks of 7 plus one short one.
  std::vector<ChunkRange> chunks;
  const std::size_t total = 73;
  for (std::size_t lo = 0; lo < total; lo += 7) {
    chunks.push_back({chunks.size(), lo, std::min(total, lo + 7)});
  }
  std::vector<std::atomic<int>> runs(chunks.size());
  std::vector<std::atomic<int>> covered(total);
  std::vector<std::size_t> worker_chunks;

  parallel_stealing_chunks(
      pool, chunks,
      [&](std::size_t index, std::size_t lo, std::size_t hi) {
        runs[index].fetch_add(1);
        EXPECT_EQ(lo, index * 7);
        EXPECT_EQ(hi, std::min(total, lo + 7));
        for (std::size_t i = lo; i < hi; ++i) covered[i].fetch_add(1);
      },
      &worker_chunks);

  for (std::size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(runs[c].load(), 1) << "chunk " << c;
  }
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(covered[i].load(), 1) << "index " << i;
  }
  ASSERT_EQ(worker_chunks.size(), pool.size());
  std::size_t sum = 0;
  for (const std::size_t w : worker_chunks) sum += w;
  EXPECT_EQ(sum, chunks.size());
}

TEST(ParallelStealingChunksTest, EveryWorkerExecutesItsReservedChunk) {
  ThreadPool pool(4);
  // chunks >= 2 x workers: the reserved-first-chunk rule guarantees no
  // logical worker records zero, however lopsided the stealing.
  std::vector<ChunkRange> chunks;
  for (std::size_t c = 0; c < 8; ++c) chunks.push_back({c, c, c + 1});
  std::vector<std::size_t> worker_chunks;
  parallel_stealing_chunks(
      pool, chunks, [](std::size_t, std::size_t, std::size_t) {},
      &worker_chunks);
  ASSERT_EQ(worker_chunks.size(), 4u);
  for (std::size_t w = 0; w < worker_chunks.size(); ++w) {
    EXPECT_GE(worker_chunks[w], 1u) << "worker " << w;
  }
}

TEST(ParallelStealingChunksTest, EmptyChunkListIsANoop) {
  ThreadPool pool(2);
  std::vector<std::size_t> worker_chunks{99, 99};
  parallel_stealing_chunks(
      pool, {},
      [](std::size_t, std::size_t, std::size_t) { FAIL() << "no chunks"; },
      &worker_chunks);
  EXPECT_EQ(worker_chunks, (std::vector<std::size_t>{0, 0}));
}

TEST(ParallelStealingChunksTest, FirstExceptionIsRethrownAfterAllChunksRan) {
  ThreadPool pool(3);
  std::vector<ChunkRange> chunks;
  for (std::size_t c = 0; c < 12; ++c) chunks.push_back({c, c, c + 1});
  std::atomic<int> executed{0};
  EXPECT_THROW(
      parallel_stealing_chunks(pool, chunks,
                               [&](std::size_t index, std::size_t,
                                   std::size_t) {
                                 executed.fetch_add(1);
                                 if (index == 5) {
                                   throw std::runtime_error("boom");
                                 }
                               }),
      std::runtime_error);
  // A failing chunk must not abort its neighbours (matches
  // parallel_fixed_chunks).
  EXPECT_EQ(executed.load(), 12);
}

TEST(ParallelStealingChunksTest, SingleWorkerPoolRunsEverythingInOrder) {
  ThreadPool pool(1);
  std::vector<ChunkRange> chunks;
  for (std::size_t c = 0; c < 6; ++c) chunks.push_back({c, c * 2, c * 2 + 2});
  std::vector<std::size_t> order;
  parallel_stealing_chunks(pool, chunks,
                           [&](std::size_t index, std::size_t, std::size_t) {
                             order.push_back(index);
                           });
  // One worker, no thieves: the reserved chunk first, then ascending pops
  // (pushed highest-first) — exactly the fixed schedule's order.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
