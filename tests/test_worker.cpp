// remote::ShardWorker + core::TcpTransport — the remote execution path
// of `wdag drive --workers`, exercised in-process over loopback TCP.
//
// The transport-level tests need no CLI binary: the worker embeds its
// own api::Engine and the TcpTransport validates payloads before they
// touch disk. The full-drive tests additionally spawn local `shard run`
// children (the degradation path), so they skip without WDAG_CLI_BIN —
// like tests/test_driver.cpp, whose CTest registration passes
// $<TARGET_FILE:wdag_cli>.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/shard.hpp"
#include "core/transport.hpp"
#include "remote/worker.hpp"
#include "util/check.hpp"
#include "util/socket.hpp"
#include "wdag/wdag.hpp"

namespace {

using namespace wdag;

const char* cli_bin() { return std::getenv("WDAG_CLI_BIN"); }

ShardSpec small_spec(std::size_t count = 24) {
  ShardSpec spec;
  spec.family = "random-upp";
  spec.count = count;
  spec.seed = 1311;
  return spec;
}

/// The unsharded reference bytes of `spec` (one in-process engine).
std::string reference_csv(const ShardSpec& spec) {
  Engine engine(EngineOptions{.threads = 2, .solve = {}});
  std::ostringstream os;
  CsvStreamSink sink(os);
  BatchRequest request =
      BatchRequest::generated(spec.family, spec.count, spec.params);
  request.options.seed = spec.seed;
  request.options.keep_entries = false;
  request.sinks = {&sink};
  (void)engine.run_batch(request);
  return os.str();
}

std::string fresh_work_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/wdag_worker_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// An in-process worker serving on an ephemeral loopback port.
struct TestWorker {
  remote::ShardWorker worker;

  explicit TestWorker(remote::ShardWorkerHooks hooks = {})
      : worker([&hooks] {
          remote::ShardWorkerOptions options;
          options.engine_threads = 1;
          options.hooks = hooks;
          return options;
        }()) {
    worker.start();
  }
  ~TestWorker() {
    worker.request_stop();
    worker.join();
  }
  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(worker.port());
  }
};

/// One remote attempt of shard `index` through `transport`; returns the
/// attempt's exit code, leaving diagnostics readable on `attempt`.
std::unique_ptr<core::TransportAttempt> start_attempt(
    core::WorkerTransport& transport, const ShardPlan& plan,
    std::size_t index, const std::string& out_path,
    std::size_t attempt_number = 0) {
  core::AttemptSpec spec;
  spec.shard = index;
  spec.number = attempt_number;
  spec.manifest_json = core::manifest_to_json(plan.manifest(index));
  spec.out_path = out_path;
  return transport.start(spec);
}

// --- transport level -------------------------------------------------------

TEST(WorkerTest, AnswersPingWithACompatiblePong) {
  TestWorker tw;
  util::TcpConn conn =
      util::TcpConn::connect("127.0.0.1", tw.worker.port(), 1000);
  ASSERT_TRUE(conn.write_line(core::wire::ping_line()));
  std::string line;
  ASSERT_EQ(conn.read_line(line, 2000), util::ReadStatus::kLine);
  EXPECT_TRUE(core::wire::is_pong(line));
  EXPECT_EQ(tw.worker.pings_answered(), 1u);
}

TEST(WorkerTest, RemoteAttemptProducesAValidatedShardFile) {
  TestWorker tw;
  core::TcpTransport transport(tw.endpoint(), core::TcpTransport::Config{});
  const ShardSpec spec = small_spec();
  const ShardPlan plan(spec, 2);
  const std::string dir = fresh_work_dir("ok");

  for (std::size_t s = 0; s < 2; ++s) {
    const std::string out = dir + "/shard." + std::to_string(s) + ".csv";
    auto attempt = start_attempt(transport, plan, s, out);
    EXPECT_EQ(attempt->wait(), 0) << attempt->failure_detail();
    std::ifstream in(out);
    ASSERT_TRUE(in.good());
    const core::ShardCsv csv = core::read_shard_csv(in, out);
    EXPECT_EQ(csv.manifest.plan_id, plan.id());
    EXPECT_EQ(csv.manifest.shard, s);
  }
  EXPECT_EQ(tw.worker.shards_served(), 2u);
  EXPECT_TRUE(transport.healthy());
}

TEST(WorkerTest, CorruptPayloadFailsTheAttemptLikeACrash) {
  remote::ShardWorkerHooks hooks;
  hooks.corrupt_shard = 0;
  TestWorker tw(hooks);
  core::TcpTransport transport(tw.endpoint(), core::TcpTransport::Config{});
  const ShardPlan plan(small_spec(), 2);
  const std::string dir = fresh_work_dir("corrupt");
  const std::string out = dir + "/shard.0.csv";

  // Attempt 0: the worker ships bytes that disagree with the checksum
  // its header promised — a crashed attempt, nothing reaches out_path.
  auto attempt = start_attempt(transport, plan, 0, out);
  EXPECT_NE(attempt->wait(), 0);
  EXPECT_NE(attempt->failure_detail().find("checksum mismatch"),
            std::string::npos)
      << attempt->failure_detail();
  EXPECT_FALSE(std::filesystem::exists(out));

  // The hook fired once; the retry gets honest bytes.
  auto retry = start_attempt(transport, plan, 0, out, 1);
  EXPECT_EQ(retry->wait(), 0) << retry->failure_detail();
  EXPECT_TRUE(std::filesystem::exists(out));
}

TEST(WorkerTest, DroppedConnectionFailsOnceThenTheRetrySucceeds) {
  remote::ShardWorkerHooks hooks;
  hooks.drop_conn_shard = 0;
  TestWorker tw(hooks);
  core::TcpTransport transport(tw.endpoint(), core::TcpTransport::Config{});
  const ShardPlan plan(small_spec(), 2);
  const std::string dir = fresh_work_dir("drop");
  const std::string out = dir + "/shard.0.csv";

  auto attempt = start_attempt(transport, plan, 0, out);
  EXPECT_NE(attempt->wait(), 0);
  EXPECT_NE(attempt->failure_detail().find("closed mid-payload"),
            std::string::npos)
      << attempt->failure_detail();
  EXPECT_FALSE(std::filesystem::exists(out));

  auto retry = start_attempt(transport, plan, 0, out, 1);
  EXPECT_EQ(retry->wait(), 0) << retry->failure_detail();
}

TEST(WorkerTest, InjectedWorkerFailurePropagatesItsDiagnostic) {
  remote::ShardWorkerHooks hooks;
  hooks.fail_shard = 1;
  TestWorker tw(hooks);
  core::TcpTransport transport(tw.endpoint(), core::TcpTransport::Config{});
  const ShardPlan plan(small_spec(), 2);
  const std::string dir = fresh_work_dir("fail");

  auto attempt = start_attempt(transport, plan, 1, dir + "/shard.1.csv");
  EXPECT_NE(attempt->wait(), 0);
  EXPECT_NE(attempt->failure_detail().find("injected failure"),
            std::string::npos)
      << attempt->failure_detail();
  EXPECT_EQ(tw.worker.shards_failed(), 1u);
}

TEST(WorkerTest, MalformedEndpointIsRejectedUpFront) {
  EXPECT_THROW(core::TcpTransport::parse_endpoint("no-port-here"),
               InvalidArgument);
  EXPECT_THROW(core::TcpTransport::parse_endpoint("127.0.0.1:0"),
               InvalidArgument);
  EXPECT_THROW(core::TcpTransport::parse_endpoint("127.0.0.1:99999"),
               InvalidArgument);
  const auto [host, port] = core::TcpTransport::parse_endpoint("10.0.0.2:7070");
  EXPECT_EQ(host, "10.0.0.2");
  EXPECT_EQ(port, 7070);
}

// --- full drives over remote workers ---------------------------------------

core::DriveOptions remote_drive_options(const std::string& work_dir,
                                        std::vector<std::string> endpoints) {
  core::DriveOptions options;
  options.wdag_binary = cli_bin() ? cli_bin() : "wdag-unused";
  options.work_dir = work_dir;
  options.workers = 0;  // remote-only until degradation says otherwise
  options.remote_workers = std::move(endpoints);
  options.max_retries = 4;
  options.backoff_seconds = 0.01;
  return options;
}

TEST(WorkerDriveTest, DriveOverARemoteWorkerIsByteIdenticalUnderFaults) {
  // One worker, all hooks armed: shard 0's first transfer drops
  // mid-payload and its retry ships a corrupted payload (the hooks fire
  // on separate attempts by design); shard 1 is refused once. A single
  // worker makes every retry land back on the armed hooks — all
  // absorbed by the normal retry budget, and the merge must still be
  // byte-identical.
  remote::ShardWorkerHooks hooks;
  hooks.drop_conn_shard = 0;
  hooks.corrupt_shard = 0;
  hooks.fail_shard = 1;
  TestWorker w1(hooks);

  const ShardSpec spec = small_spec(36);
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 3);
  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  const core::DriveReport report = core::drive(
      plan, remote_drive_options(fresh_work_dir("faults"), {w1.endpoint()}),
      os, [&](const core::DriveEvent& e) { events.push_back(e); });

  EXPECT_EQ(os.str(), want);
  EXPECT_GE(report.retries, 3u);  // drop + corrupt (shard 0), fail (shard 1)
  ASSERT_EQ(report.shards.size(), 3u);
  for (const auto& s : report.shards) {
    // Remote-only drive: every winner is attributed to the worker.
    EXPECT_EQ(s.worker, w1.endpoint()) << "shard " << s.shard;
  }
  bool saw_checksum = false, saw_drop = false, saw_injected = false;
  for (const auto& e : events) {
    if (e.detail.find("checksum mismatch") != std::string::npos) {
      saw_checksum = true;
    }
    if (e.detail.find("closed mid-payload") != std::string::npos) {
      saw_drop = true;
    }
    if (e.detail.find("injected failure") != std::string::npos) {
      saw_injected = true;
    }
  }
  EXPECT_TRUE(saw_checksum);
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_injected);
}

TEST(WorkerDriveTest, StalledUnhealthyWorkerIsRedispatchedWithoutRetryCost) {
  // worker2 stalls its first shard attempt far past the drive and
  // answers every ping slower than the probe timeout: the drive can
  // only finish by noticing the sick worker and moving the in-flight
  // attempt to worker1 — and that move must not burn retry budget.
  TestWorker w1;
  remote::ShardWorkerHooks hooks2;
  hooks2.stall_first_ms = 120'000;
  hooks2.slow_heartbeat_count = 9999;
  hooks2.slow_heartbeat_ms = 9999;
  TestWorker w2(hooks2);

  const ShardSpec spec = small_spec(36);
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 3);
  core::DriveOptions options = remote_drive_options(
      fresh_work_dir("redispatch"), {w1.endpoint(), w2.endpoint()});
  options.probe_interval_seconds = 0.1;
  options.probe_timeout_ms = 200;
  options.probe_miss_budget = 1;

  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  const core::DriveReport report = core::drive(
      plan, options, os,
      [&](const core::DriveEvent& e) { events.push_back(e); });

  EXPECT_EQ(os.str(), want);
  EXPECT_GE(report.redispatches, 1u);
  EXPECT_EQ(report.retries, 0u);  // health moves are not failures
  bool saw_unhealthy = false, saw_redispatch = false;
  for (const auto& e : events) {
    if (e.kind == "unhealthy" && e.worker == w2.endpoint()) {
      saw_unhealthy = true;
    }
    if (e.kind == "redispatch" && e.worker == w2.endpoint()) {
      saw_redispatch = true;
    }
  }
  EXPECT_TRUE(saw_unhealthy);
  EXPECT_TRUE(saw_redispatch);
}

TEST(WorkerDriveTest, DeadFleetDegradesToLocalAndStillMatchesTheBytes) {
  if (!cli_bin()) GTEST_SKIP() << "WDAG_CLI_BIN not set";
  // An endpoint that refuses every dial: bind an ephemeral port, then
  // close the listener so nothing answers there.
  int dead_port = 0;
  {
    const util::TcpListener probe = util::TcpListener::listen("127.0.0.1", 0);
    dead_port = probe.port();
  }
  const ShardSpec spec = small_spec();
  const std::string want = reference_csv(spec);
  const ShardPlan plan(spec, 2);
  core::DriveOptions options = remote_drive_options(
      fresh_work_dir("degrade"),
      {"127.0.0.1:" + std::to_string(dead_port)});
  options.probe_interval_seconds = 0.05;
  options.probe_timeout_ms = 200;
  options.probe_miss_budget = 2;
  options.connect_timeout_ms = 200;

  std::vector<core::DriveEvent> events;
  std::ostringstream os;
  const core::DriveReport report = core::drive(
      plan, options, os,
      [&](const core::DriveEvent& e) { events.push_back(e); });

  EXPECT_EQ(os.str(), want);
  bool saw_unhealthy = false, saw_degrade = false;
  for (const auto& e : events) {
    if (e.kind == "unhealthy") saw_unhealthy = true;
    if (e.kind == "degrade") saw_degrade = true;
  }
  EXPECT_TRUE(saw_unhealthy);
  EXPECT_TRUE(saw_degrade);
  for (const auto& s : report.shards) EXPECT_EQ(s.worker, "local");
}

}  // namespace
