// Tests for the named workload factory (gen/workloads.hpp) the CLI,
// benches and batch driver all share.

#include <gtest/gtest.h>

#include "conflict/coloring.hpp"
#include "core/solver.hpp"
#include "dag/classify.hpp"
#include "gen/workloads.hpp"
#include "helpers.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdag;
using gen::Instance;
using gen::WorkloadParams;
using util::Xoshiro256;

TEST(WorkloadsTest, EveryNamedFamilyBuildsASolvableInstance) {
  const WorkloadParams params;
  for (const std::string& name : gen::workload_names()) {
    Xoshiro256 rng(7);
    const Instance inst = gen::workload_instance(name, params, rng);
    ASSERT_NE(inst.graph, nullptr) << name;
    EXPECT_GT(inst.graph->num_vertices(), 0u) << name;
    // Every family must produce an instance the dispatcher accepts.
    const auto result = test::solve_builtin(inst.family);
    EXPECT_TRUE(conflict::is_valid_assignment(inst.family, result.coloring))
        << name;
    EXPECT_GE(result.wavelengths, result.load) << name;
  }
}

TEST(WorkloadsTest, SameSeedSameInstanceStream) {
  const WorkloadParams params;
  for (const std::string& name : {std::string("random-upp"),
                                  std::string("random-dag"),
                                  std::string("grid")}) {
    Xoshiro256 a(123), b(123);
    for (int i = 0; i < 8; ++i) {
      const Instance x = gen::workload_instance(name, params, a);
      const Instance y = gen::workload_instance(name, params, b);
      ASSERT_EQ(x.graph->num_vertices(), y.graph->num_vertices()) << name;
      ASSERT_EQ(x.graph->num_arcs(), y.graph->num_arcs()) << name;
      ASSERT_EQ(x.family.size(), y.family.size()) << name;
      for (std::size_t p = 0; p < x.family.size(); ++p) {
        EXPECT_EQ(x.family.path(static_cast<paths::PathId>(p)).arcs,
                  y.family.path(static_cast<paths::PathId>(p)).arcs)
            << name << " instance " << i << " path " << p;
      }
    }
  }
}

TEST(WorkloadsTest, RandomUppMixStaysUpp) {
  // Everything the "random-upp" family emits must actually be UPP — the
  // mix spans regimes (trees, skeletons, gadgets) but never leaves the
  // unique-dipath class it is named for.
  const WorkloadParams params;
  Xoshiro256 rng(31);
  for (int i = 0; i < 40; ++i) {
    const Instance inst = gen::workload_instance("random-upp", params, rng);
    const auto report = dag::classify(*inst.graph);
    EXPECT_TRUE(report.is_dag) << "instance " << i;
    EXPECT_TRUE(report.is_upp) << "instance " << i;
  }
}

TEST(WorkloadsTest, PaperInstancesIgnoreTheRng) {
  const WorkloadParams params;
  Xoshiro256 a(1), b(999);
  const Instance x = gen::workload_instance("figure3", params, a);
  const Instance y = gen::workload_instance("figure3", params, b);
  EXPECT_EQ(x.family.size(), y.family.size());
  EXPECT_EQ(x.graph->num_arcs(), y.graph->num_arcs());
}

TEST(WorkloadsTest, KnobsReachTheGenerators) {
  WorkloadParams params;
  params.rows = 2;
  params.cols = 3;
  Xoshiro256 rng(5);
  const Instance grid = gen::workload_instance("grid", params, rng);
  EXPECT_EQ(grid.graph->num_vertices(), 6u);

  params.h = 3;
  const Instance havet = gen::workload_instance("havet", params, rng);
  EXPECT_EQ(havet.family.size(), 24u);  // 8 dipaths replicated 3x
}

TEST(WorkloadsTest, UnknownNameThrows) {
  const WorkloadParams params;
  Xoshiro256 rng(1);
  EXPECT_THROW(gen::workload_instance("no-such-family", params, rng),
               wdag::InvalidArgument);
}

}  // namespace
